#include "workload/traffic_gen.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/zipf.hh"

namespace ccache::workload {

namespace {

/** Per-tenant generation state: an independent arrival clock + RNG.
 *  Key draws use their own derived stream so enabling a key space
 *  never perturbs the arrival/size/op sequence (§8 stream contract —
 *  the keyed run replays the unkeyed run's timing exactly). */
struct TenantState
{
    Rng rng{0};
    Rng keyRng{0};
    Cycles clock = 0;
    double rate = 0.0;                  ///< base requests per cycle
    std::vector<std::pair<double, cc::CcOpcode>> mix;  ///< cumulative
    double mixTotal = 0.0;
};

/** Rate multiplier active at @p at (phases sorted by start cycle). */
double
rateMultiplier(const TenantTraffic &spec, Cycles at)
{
    double m = 1.0;
    for (const TenantTraffic::RatePhase &p : spec.phases) {
        if (p.at > at)
            break;
        m = p.multiplier;
    }
    return m;
}

/** Next boundary strictly after @p at where the multiplier actually
 *  changes (or 0 when none). A phase that re-states the current
 *  multiplier is a no-op and must not restart the exponential draw —
 *  a unit-multiplier phase list is stream-invisible. */
Cycles
nextRateChange(const TenantTraffic &spec, Cycles at)
{
    double m = rateMultiplier(spec, at);
    for (const TenantTraffic::RatePhase &p : spec.phases) {
        if (p.at <= at)
            continue;
        if (p.multiplier != m)
            return p.at;
        m = p.multiplier;
    }
    return 0;
}

/** One exponential gap at @p rate, at least one cycle. */
Cycles
expGap(TenantState &t, double rate)
{
    double u = t.rng.uniform();                   // [0, 1)
    double gap = -std::log1p(-u) / rate;          // cycles
    if (gap > 1e15)                               // degenerate rate guard
        gap = 1e15;
    return std::max<Cycles>(1, static_cast<Cycles>(std::llround(gap)));
}

/**
 * Advance @p t's arrival clock by one inter-arrival time under the
 * tenant's (possibly phased) rate. A draw that crosses a phase
 * boundary restarts from the boundary at the new rate (the exponential
 * is memoryless, so the restart keeps the process Poisson per phase);
 * with no phases this consumes exactly one uniform draw, identical to
 * the flat-rate generator.
 */
void
advanceClock(TenantState &t, const TenantTraffic &spec)
{
    for (;;) {
        double rate = t.rate * rateMultiplier(spec, t.clock);
        CC_ASSERT(rate > 0.0, "tenant phase rate must stay positive");
        Cycles gap = expGap(t, rate);
        Cycles boundary = nextRateChange(spec, t.clock);
        if (boundary != 0 && t.clock + gap >= boundary) {
            t.clock = boundary;
            continue;
        }
        t.clock += gap;
        return;
    }
}

cc::CcOpcode
drawOp(TenantState &t)
{
    double x = t.rng.uniform() * t.mixTotal;
    for (const auto &[cum, op] : t.mix) {
        if (x < cum)
            return op;
    }
    return t.mix.back().second;
}

std::size_t
drawBytes(TenantState &t, const TenantTraffic &spec, cc::CcOpcode op)
{
    double lo = static_cast<double>(std::max<std::size_t>(
        spec.minBytes, kBlockSize));
    double hi = static_cast<double>(std::max(spec.maxBytes, spec.minBytes));
    double v = lo * std::pow(hi / lo, t.rng.uniform());
    (void)op;
    std::size_t bytes = static_cast<std::size_t>(v);
    bytes = ((bytes + kBlockSize - 1) / kBlockSize) * kBlockSize;
    return std::max(bytes, kBlockSize);
}

} // namespace

std::vector<RequestSpec>
generateTraffic(const TrafficParams &params)
{
    CC_ASSERT(!params.tenants.empty(), "traffic needs at least one tenant");

    // Shared key-space alias table; each tenant samples it through its
    // own RNG stream, so keyed and unkeyed tenants stay decorrelated.
    std::unique_ptr<ZipfSampler> keys;
    if (params.zipfKeys > 0) {
        keys = std::make_unique<ZipfSampler>(params.zipfKeys,
                                             params.keyExponent);
    }

    std::vector<TenantState> state(params.tenants.size());
    for (std::size_t i = 0; i < params.tenants.size(); ++i) {
        const TenantTraffic &spec = params.tenants[i];
        TenantState &t = state[i];
        // Seed from (seed, tenant index + name) so reordering or
        // renaming tenants decorrelates every stream.
        t.rng = Rng(deriveSeed(params.seed,
                               std::to_string(i) + ":" + spec.name));
        t.keyRng = Rng(deriveSeed(
            params.seed, std::to_string(i) + ":" + spec.name + ":key"));
        CC_ASSERT(spec.requestsPerKilocycle > 0.0,
                  "tenant arrival rate must be positive");
        CC_ASSERT(std::is_sorted(
                      spec.phases.begin(), spec.phases.end(),
                      [](const auto &a, const auto &b) {
                          return a.at < b.at;
                      }),
                  "tenant rate phases must be sorted by start cycle");
        t.rate = spec.requestsPerKilocycle / 1000.0;
        const std::pair<double, cc::CcOpcode> weights[] = {
            {spec.weightAnd, cc::CcOpcode::And},
            {spec.weightOr, cc::CcOpcode::Or},
            {spec.weightXor, cc::CcOpcode::Xor},
            {spec.weightCopy, cc::CcOpcode::Copy},
            {spec.weightSearch, cc::CcOpcode::Search},
            {spec.weightCmp, cc::CcOpcode::Cmp},
            {spec.weightBuz, cc::CcOpcode::Buz},
            {spec.weightNot, cc::CcOpcode::Not},
        };
        for (const auto &[w, op] : weights) {
            if (w <= 0.0)
                continue;
            t.mixTotal += w;
            t.mix.emplace_back(t.mixTotal, op);
        }
        CC_ASSERT(!t.mix.empty(), "tenant op mix is empty");
        advanceClock(t, spec);
    }

    // Deterministic k-way merge: always emit the earliest pending
    // arrival, ties broken by tenant index.
    std::vector<RequestSpec> out;
    out.reserve(params.totalRequests);
    while (out.size() < params.totalRequests) {
        std::size_t pick = 0;
        for (std::size_t i = 1; i < state.size(); ++i) {
            if (state[i].clock < state[pick].clock)
                pick = i;
        }
        TenantState &t = state[pick];
        const TenantTraffic &spec = params.tenants[pick];

        RequestSpec req;
        req.arrival = t.clock;
        req.tenant = static_cast<unsigned>(pick);
        req.op = drawOp(t);
        req.bytes = drawBytes(t, spec, req.op);
        req.scattered = spec.scatterFraction > 0.0 &&
            t.rng.chance(spec.scatterFraction);
        // Keys come from the tenant's dedicated key stream and fan-out
        // draws are conditional, so a keyless, fanout-less config
        // replays the exact historical arrival sequence — and enabling
        // keys never shifts arrivals, sizes, or ops.
        if (keys) {
            req.key =
                static_cast<std::uint64_t>(keys->sample(t.keyRng)) + 1;
        }
        if (spec.fanoutFraction > 0.0 &&
            t.rng.chance(spec.fanoutFraction)) {
            req.fanout = std::max(2u, spec.fanoutLegs);
        }
        out.push_back(req);

        advanceClock(t, spec);
    }
    return out;
}

} // namespace ccache::workload
