#include "workload/traffic_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::workload {

namespace {

/** Per-tenant generation state: an independent arrival clock + RNG. */
struct TenantState
{
    Rng rng{0};
    Cycles clock = 0;
    double rate = 0.0;                  ///< requests per cycle
    std::vector<std::pair<double, cc::CcOpcode>> mix;  ///< cumulative
    double mixTotal = 0.0;
};

/** Exponential inter-arrival draw, at least one cycle. */
Cycles
interArrival(TenantState &t)
{
    double u = t.rng.uniform();                   // [0, 1)
    double gap = -std::log1p(-u) / t.rate;        // cycles
    if (gap > 1e15)                               // degenerate rate guard
        gap = 1e15;
    return std::max<Cycles>(1, static_cast<Cycles>(std::llround(gap)));
}

cc::CcOpcode
drawOp(TenantState &t)
{
    double x = t.rng.uniform() * t.mixTotal;
    for (const auto &[cum, op] : t.mix) {
        if (x < cum)
            return op;
    }
    return t.mix.back().second;
}

std::size_t
drawBytes(TenantState &t, const TenantTraffic &spec, cc::CcOpcode op)
{
    double lo = static_cast<double>(std::max<std::size_t>(
        spec.minBytes, kBlockSize));
    double hi = static_cast<double>(std::max(spec.maxBytes, spec.minBytes));
    double v = lo * std::pow(hi / lo, t.rng.uniform());
    (void)op;
    std::size_t bytes = static_cast<std::size_t>(v);
    bytes = ((bytes + kBlockSize - 1) / kBlockSize) * kBlockSize;
    return std::max(bytes, kBlockSize);
}

} // namespace

std::vector<RequestSpec>
generateTraffic(const TrafficParams &params)
{
    CC_ASSERT(!params.tenants.empty(), "traffic needs at least one tenant");

    std::vector<TenantState> state(params.tenants.size());
    for (std::size_t i = 0; i < params.tenants.size(); ++i) {
        const TenantTraffic &spec = params.tenants[i];
        TenantState &t = state[i];
        // Seed from (seed, tenant index + name) so reordering or
        // renaming tenants decorrelates every stream.
        t.rng = Rng(deriveSeed(params.seed,
                               std::to_string(i) + ":" + spec.name));
        CC_ASSERT(spec.requestsPerKilocycle > 0.0,
                  "tenant arrival rate must be positive");
        t.rate = spec.requestsPerKilocycle / 1000.0;
        const std::pair<double, cc::CcOpcode> weights[] = {
            {spec.weightAnd, cc::CcOpcode::And},
            {spec.weightOr, cc::CcOpcode::Or},
            {spec.weightXor, cc::CcOpcode::Xor},
            {spec.weightCopy, cc::CcOpcode::Copy},
            {spec.weightSearch, cc::CcOpcode::Search},
            {spec.weightCmp, cc::CcOpcode::Cmp},
            {spec.weightBuz, cc::CcOpcode::Buz},
            {spec.weightNot, cc::CcOpcode::Not},
        };
        for (const auto &[w, op] : weights) {
            if (w <= 0.0)
                continue;
            t.mixTotal += w;
            t.mix.emplace_back(t.mixTotal, op);
        }
        CC_ASSERT(!t.mix.empty(), "tenant op mix is empty");
        t.clock = interArrival(t);
    }

    // Deterministic k-way merge: always emit the earliest pending
    // arrival, ties broken by tenant index.
    std::vector<RequestSpec> out;
    out.reserve(params.totalRequests);
    while (out.size() < params.totalRequests) {
        std::size_t pick = 0;
        for (std::size_t i = 1; i < state.size(); ++i) {
            if (state[i].clock < state[pick].clock)
                pick = i;
        }
        TenantState &t = state[pick];
        const TenantTraffic &spec = params.tenants[pick];

        RequestSpec req;
        req.arrival = t.clock;
        req.tenant = static_cast<unsigned>(pick);
        req.op = drawOp(t);
        req.bytes = drawBytes(t, spec, req.op);
        req.scattered = spec.scatterFraction > 0.0 &&
            t.rng.chance(spec.scatterFraction);
        out.push_back(req);

        t.clock += interArrival(t);
    }
    return out;
}

} // namespace ccache::workload
