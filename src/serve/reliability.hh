/**
 * @file
 * Per-request reliability primitives of the sharded serving front end
 * (DESIGN.md §12): deterministic retry backoff and a per-shard circuit
 * breaker.
 *
 * Both primitives live in simulated time and are pure functions of
 * their inputs. BackoffPolicy::delay derives its jitter from a
 * SplitMix64 hash of (seed, request id, attempt) — no RNG stream is
 * consumed, so the retry schedule of a request is identical wherever
 * and whenever it is computed (the §8 determinism contract extends to
 * failure handling). CircuitBreaker is a plain three-state machine
 * (Closed -> Open on a failure streak, Open -> HalfOpen after a
 * cooloff, HalfOpen -> Closed on probe successes / -> Open on a probe
 * failure) advanced only by the caller's explicit simulated-time
 * observations.
 */

#ifndef CCACHE_SERVE_RELIABILITY_HH
#define CCACHE_SERVE_RELIABILITY_HH

#include <cstdint>

#include "common/types.hh"
#include "serve/request.hh"

namespace ccache::serve {

/** Retry / backoff knobs. */
struct RetryParams
{
    /** Total dispatch attempts per request (1 = no retries). */
    unsigned maxAttempts = 3;

    /** Exponential backoff: retry k waits base << (k-1), capped. @{ */
    Cycles backoffBase = 2000;
    Cycles backoffCap = 64000;
    /** @} */

    /** Jitter width as a fraction of the backoff value: the delay is
     *  drawn uniformly (by hash) from [d*(1-j/2), d*(1+j/2)]. */
    double jitterFraction = 0.5;

    /** Seed folded into the jitter hash. */
    std::uint64_t seed = 1;
};

/** Deterministic exponential backoff with hash-derived jitter. */
class BackoffPolicy
{
  public:
    explicit BackoffPolicy(const RetryParams &params) : params_(params) {}

    const RetryParams &params() const { return params_; }

    /**
     * Delay in cycles before retry attempt @p attempt (1-based: the
     * first retry is attempt 1) of request @p id. Pure: same
     * (seed, id, attempt) -> same delay, always >= 1.
     */
    Cycles delay(RequestId id, unsigned attempt) const;

  private:
    RetryParams params_;
};

/** Circuit-breaker knobs. */
struct BreakerParams
{
    /** Consecutive request failures that trip Closed -> Open. */
    unsigned failureThreshold = 4;

    /** Simulated time spent Open before the breaker half-opens and
     *  admits probe traffic. */
    Cycles openCooloff = 20000;

    /** Consecutive half-open probe successes that close the breaker. */
    unsigned probeSuccesses = 2;
};

/**
 * Per-shard circuit breaker. The router consults state(now) before
 * dispatching to a shard and reports every request outcome through
 * onSuccess / onFailure; an Open breaker browns the shard out (hi-QoS
 * traffic reroutes, the rest sheds with RejectReason::BreakerOpen).
 */
class CircuitBreaker
{
  public:
    enum class State { Closed, Open, HalfOpen };

    CircuitBreaker() = default;
    explicit CircuitBreaker(const BreakerParams &params)
        : params_(params) {}

    /** Current state, applying the Open -> HalfOpen cooloff lazily. */
    State state(Cycles now) const;

    /** True when the shard may be dispatched at @p now: Closed, or
     *  HalfOpen (probe traffic). */
    bool allowDispatch(Cycles now) const
    {
        return state(now) != State::Open;
    }

    /** Record one request outcome observed at @p now. @{ */
    void onSuccess(Cycles now);
    void onFailure(Cycles now);
    /** @} */

    /** Force-open (shard crash): failures need not accumulate. */
    void trip(Cycles now);

    /** Cycle at which an Open breaker half-opens (meaningful only
     *  while state() is Open) — the router's next wake-up candidate
     *  for a shard with queued work behind an open breaker. */
    Cycles halfOpenAt() const { return openedAt_ + params_.openCooloff; }

    /** Lifetime trip count (Closed/HalfOpen -> Open transitions). */
    std::uint64_t trips() const { return trips_; }

  private:
    BreakerParams params_;
    State state_ = State::Closed;
    Cycles openedAt_ = 0;
    unsigned failureStreak_ = 0;
    unsigned probeStreak_ = 0;
    std::uint64_t trips_ = 0;
};

const char *toString(CircuitBreaker::State state);

} // namespace ccache::serve

#endif // CCACHE_SERVE_RELIABILITY_HH
