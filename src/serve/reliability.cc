#include "serve/reliability.hh"

#include <algorithm>

#include "common/rng.hh"

namespace ccache::serve {

Cycles
BackoffPolicy::delay(RequestId id, unsigned attempt) const
{
    unsigned shift = attempt > 0 ? attempt - 1 : 0;
    // Saturate the doubling instead of overflowing it.
    Cycles d = shift < 63 && (params_.backoffBase << shift) >> shift ==
                   params_.backoffBase
        ? params_.backoffBase << shift
        : params_.backoffCap;
    d = std::min(d, params_.backoffCap);

    double j = std::clamp(params_.jitterFraction, 0.0, 1.0);
    if (j > 0.0) {
        // Pure hash -> uniform fraction in [0, 1); no RNG stream.
        std::uint64_t h = mix64(mix64(params_.seed ^ id) ^
                                (0x5e7261ULL + attempt));
        double frac = static_cast<double>(h >> 11) * 0x1.0p-53;
        double scaled = static_cast<double>(d) * (1.0 - j / 2 + j * frac);
        d = static_cast<Cycles>(scaled);
    }
    return std::max<Cycles>(1, d);
}

CircuitBreaker::State
CircuitBreaker::state(Cycles now) const
{
    if (state_ == State::Open && now >= openedAt_ + params_.openCooloff)
        return State::HalfOpen;
    return state_;
}

void
CircuitBreaker::onSuccess(Cycles now)
{
    switch (state(now)) {
      case State::HalfOpen:
        if (++probeStreak_ >= params_.probeSuccesses) {
            state_ = State::Closed;
            failureStreak_ = 0;
            probeStreak_ = 0;
        } else {
            // Stay half-open; materialize the lazy transition so a
            // later failure re-opens from HalfOpen, not stale Open.
            state_ = State::HalfOpen;
        }
        break;
      case State::Closed:
        failureStreak_ = 0;
        break;
      case State::Open:
        break;   // stale success from before the trip: ignore
    }
}

void
CircuitBreaker::onFailure(Cycles now)
{
    switch (state(now)) {
      case State::HalfOpen:
        // Materialize the lazy Open -> HalfOpen transition first so
        // the re-trip below is counted as a real one.
        state_ = State::HalfOpen;
        trip(now);   // failed probe: full cooloff again
        break;
      case State::Closed:
        if (++failureStreak_ >= params_.failureThreshold)
            trip(now);
        break;
      case State::Open:
        break;
    }
}

void
CircuitBreaker::trip(Cycles now)
{
    if (state_ != State::Open)
        ++trips_;
    state_ = State::Open;
    openedAt_ = now;
    failureStreak_ = 0;
    probeStreak_ = 0;
}

const char *
toString(CircuitBreaker::State state)
{
    switch (state) {
      case CircuitBreaker::State::Closed: return "closed";
      case CircuitBreaker::State::Open: return "open";
      case CircuitBreaker::State::HalfOpen: return "half-open";
    }
    return "unknown";
}

} // namespace ccache::serve
