/**
 * @file
 * Structured shed-load recording (DESIGN.md §11, §12).
 *
 * Every request the serving layer refuses — at queue admission, at the
 * router's deadline check, behind an open circuit breaker, or because
 * the operand heap is exhausted — is recorded here with its reason and
 * owning tenant: per-(tenant, reason) counts, per-reason stats counters
 * wired into the registry (and therefore every JSON stats export), and
 * a bounded sample list of concrete victims. The RequestQueue embeds
 * one log for admission rejections; the ShardRouter keeps a fleet-level
 * log for reliability-pipeline sheds. Shed load is first-class output,
 * never a silent drop.
 */

#ifndef CCACHE_SERVE_SHED_LOG_HH
#define CCACHE_SERVE_SHED_LOG_HH

#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"

namespace ccache::serve {

class ShedLog
{
  public:
    /** Counters are pre-registered for every (tenant, reason) pair so
     *  the stats dump shape never depends on which sheds occurred. */
    ShedLog(const std::vector<TenantQos> &tenants, StatGroup stats,
            std::size_t max_samples = 32);

    /** Record one shed request. */
    void record(RequestId id, TenantId tenant, RejectReason reason,
                Cycles arrival);

    /** Total sheds (all tenants, all reasons). */
    std::uint64_t total() const { return total_; }

    /** Sheds of @p tenant for @p reason. */
    std::uint64_t count(TenantId tenant, RejectReason reason) const;

    /** Sheds for @p reason across all tenants. */
    std::uint64_t countByReason(RejectReason reason) const;

    /**
     * Structured shed-load report:
     *
     *     { "total": N,
     *       "by_reason": { "<reason>": count, ... },
     *       "by_tenant": { "<tenant>": { "<reason>": count, ... } },
     *       "samples": [ { "id", "tenant", "reason", "arrival" }, ... ] }
     */
    Json toJson() const;

  private:
    struct Sample
    {
        RequestId id;
        TenantId tenant;
        RejectReason reason;
        Cycles arrival;
    };

    std::vector<TenantQos> qos_;
    std::size_t maxSamples_;
    std::uint64_t total_ = 0;
    /** [tenant][reason] -> count (dense; reasons are a small enum). */
    std::vector<std::vector<std::uint64_t>> counts_;
    std::vector<Sample> samples_;

    StatGroup stats_;
    /** [tenant] -> aggregate; [tenant][reason] -> per-reason. @{ */
    std::vector<StatCounter *> tenantCtr_;
    std::vector<std::vector<StatCounter *>> reasonCtr_;
    /** @} */
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_SHED_LOG_HH
