#include "serve/server.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace ccache::serve {

Json
ServeReport::toJson() const
{
    Json doc = Json::object();
    doc["offered"] = offered;
    doc["admitted"] = admitted;
    doc["served"] = served;
    doc["rejected"] = rejected;
    doc["elapsed_cycles"] = elapsed;
    doc["throughput_rpmc"] = throughputRpmc;
    Json tens = Json::object();
    for (const TenantSummary &t : tenants) {
        Json e = Json::object();
        e["admitted"] = t.admitted;
        e["served"] = t.served;
        e["rejected"] = t.rejected;
        e["p50_queue_cycles"] = t.p50QueueCycles;
        e["p99_queue_cycles"] = t.p99QueueCycles;
        e["p999_queue_cycles"] = t.p999QueueCycles;
        e["p50_service_cycles"] = t.p50ServiceCycles;
        e["p99_service_cycles"] = t.p99ServiceCycles;
        e["mean_sojourn_cycles"] = t.meanSojournCycles;
        tens[t.name] = std::move(e);
    }
    doc["tenants"] = std::move(tens);
    doc["rejections"] = rejections;
    return doc;
}

CcServer::CcServer(sim::System &sys, const ServerParams &params)
    : sys_(sys), params_(params)
{
    CC_ASSERT(!params_.tenants.empty(), "server needs at least one tenant");
    std::set<std::string> names;
    for (const TenantQos &t : params_.tenants)
        CC_ASSERT(names.insert(t.name).second,
                  "tenant names must be unique: ", t.name);

    alloc_ = std::make_unique<geometry::LocalityAllocator>(
        params_.heapBase, params_.heapBytes);
    StatGroup serve = sys_.stats().group("serve");
    queue_ = std::make_unique<RequestQueue>(params_.queue, params_.tenants,
                                            serve);
    sched_ = std::make_unique<BatchScheduler>(
        sys_, *queue_, params_.tenants, params_.sched, serve);
    for (const TenantQos &t : params_.tenants) {
        StatGroup g = serve.group(t.name);
        tenantStats_.push_back(TenantStats{
            &g.counter("served", "requests completed"),
            &g.logHistogram("queue_cycles",
                            "admission -> dispatch wait per request"),
            &g.logHistogram("service_cycles",
                            "dispatch -> completion per request"),
            &g.logHistogram("sojourn_cycles",
                            "admission -> completion per request"),
        });
    }
}

Request
CcServer::buildRequest(const workload::RequestSpec &spec, RequestId id)
{
    Request req;
    req.id = id;
    req.tenant = spec.tenant;
    req.arrival = spec.arrival;
    req.bytes = spec.bytes;
    req.scattered = spec.scattered;

    const geometry::GroupId group =
        static_cast<geometry::GroupId>(id % params_.allocGroups);

    auto alloc_local = [&](std::size_t n) {
        Addr a = alloc_->allocate(n, group);
        req.buffers.emplace_back(a, n);
        return a;
    };
    // Scattered operand: same size, page offset guaranteed to differ
    // from the request's locality group, so the controller's operand-
    // locality check fails and the op degrades to the near-place unit.
    auto alloc_scattered = [&](std::size_t n) {
        Addr group_off = alloc_->groupOffset(group);
        Addr a = alloc_->allocate(n + kBlockSize);
        req.buffers.emplace_back(a, n + kBlockSize);
        return (a & (kPageSize - 1)) == group_off ? a + kBlockSize : a;
    };
    auto alloc_second = [&](std::size_t n) {
        return spec.scattered ? alloc_scattered(n) : alloc_local(n);
    };

    // CC-R ops (cmp/search) are limited to 512 B so the result fits a
    // 64-bit register; everything else takes a full 16 KB ISA vector.
    const std::size_t n = spec.bytes;
    const std::size_t chunk_limit =
        cc::isCcR(spec.op) ? cc::kMaxCmpBytes : cc::kMaxVectorBytes;

    Addr src1 = 0, src2 = 0, dest = 0;
    switch (spec.op) {
      case cc::CcOpcode::Buz:
        src1 = alloc_local(n);
        break;
      case cc::CcOpcode::Copy:
      case cc::CcOpcode::Not:
        src1 = alloc_local(n);
        dest = alloc_second(n);
        break;
      case cc::CcOpcode::Cmp:
        src1 = alloc_local(n);
        src2 = alloc_second(n);
        break;
      case cc::CcOpcode::Search:
        src1 = alloc_local(n);
        src2 = alloc_second(cc::kSearchKeyBytes);   // 64-byte key
        break;
      default:   // And / Or / Xor
        src1 = alloc_local(n);
        src2 = alloc_second(n);
        dest = alloc_local(n);
        break;
    }

    if (params_.warmL3) {
        for (const auto &[addr, len] : req.buffers)
            sys_.warm(CacheLevel::L3, 0, addr, len);
    }

    // Chunk to the ISA limits; the first chunk is the head instruction,
    // the rest ride in req.chunks and batch into the wave as extra
    // instruction slots.
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += chunk_limit) {
        std::size_t len = std::min(chunk_limit, n - off);
        switch (spec.op) {
          case cc::CcOpcode::Buz:
            instrs.push_back(cc::CcInstruction::buz(src1 + off, len));
            break;
          case cc::CcOpcode::Copy:
            instrs.push_back(
                cc::CcInstruction::copy(src1 + off, dest + off, len));
            break;
          case cc::CcOpcode::Not:
            instrs.push_back(
                cc::CcInstruction::logicalNot(src1 + off, dest + off, len));
            break;
          case cc::CcOpcode::Cmp:
            instrs.push_back(
                cc::CcInstruction::cmp(src1 + off, src2 + off, len));
            break;
          case cc::CcOpcode::Search:
            instrs.push_back(
                cc::CcInstruction::search(src1 + off, src2, len));
            break;
          case cc::CcOpcode::And:
            instrs.push_back(cc::CcInstruction::logicalAnd(
                src1 + off, src2 + off, dest + off, len));
            break;
          case cc::CcOpcode::Or:
            instrs.push_back(cc::CcInstruction::logicalOr(
                src1 + off, src2 + off, dest + off, len));
            break;
          case cc::CcOpcode::Xor:
            instrs.push_back(cc::CcInstruction::logicalXor(
                src1 + off, src2 + off, dest + off, len));
            break;
          default:
            CC_FATAL("unsupported serve opcode ",
                     cc::toString(spec.op));
        }
    }
    CC_ASSERT(!instrs.empty(), "request built no instructions");
    req.instr = instrs.front();
    req.chunks.assign(instrs.begin() + 1, instrs.end());
    return req;
}

void
CcServer::recycle(const Request &req)
{
    for (const auto &[addr, len] : req.buffers)
        alloc_->free(addr, len);
}

ServeReport
CcServer::run(const std::vector<workload::RequestSpec> &specs)
{
    ServeReport report;
    report.offered = specs.size();

    std::size_t next = 0;
    Cycles now = 0;
    while (true) {
        // Admit every arrival up to the current time, in arrival order.
        while (next < specs.size() && specs[next].arrival <= now) {
            Request req = buildRequest(specs[next], nextId_++);
            ++next;
            if (auto reason = queue_->offer(req, now)) {
                (void)reason;   // counted inside the queue
                recycle(req);
                ++report.rejected;
            } else {
                ++report.admitted;
            }
        }
        if (queue_->empty()) {
            if (next == specs.size())
                break;
            now = specs[next].arrival;   // idle until the next arrival
            continue;
        }

        BatchScheduler::Wave wave = sched_->dispatch(now);
        CC_ASSERT(!wave.requests.empty(), "dispatch made no progress");
        CC_ASSERT(wave.results.size() == wave.requests.size(),
                  "wave result/request mismatch");
        for (std::size_t i = 0; i < wave.requests.size(); ++i) {
            const Request &req = wave.requests[i];
            TenantStats &ts = tenantStats_[req.tenant];
            Cycles queue_wait = now - req.arrival;
            Cycles service = wave.results[i].latency;
            ts.served->inc();
            ts.queueCycles->sample(queue_wait);
            ts.serviceCycles->sample(service);
            ts.sojournCycles->sample(queue_wait + service);
            recycle(req);
            ++report.served;
        }
        now += wave.makespan;
        sys_.advance(0, wave.makespan);
    }

    report.elapsed = now;
    report.throughputRpmc = now
        ? static_cast<double>(report.served) * 1e6 /
              static_cast<double>(now)
        : 0.0;
    report.rejections = queue_->rejectionsJson();

    const StatRegistry &reg = sys_.stats();
    for (std::size_t t = 0; t < params_.tenants.size(); ++t) {
        const std::string &name = params_.tenants[t].name;
        ServeReport::TenantSummary s;
        s.name = name;
        s.admitted = reg.value("serve." + name + ".admitted");
        s.served = reg.value("serve." + name + ".served");
        s.rejected = reg.value("serve." + name + ".rejected");
        const StatLogHistogram *q =
            reg.logHistogramAt("serve." + name + ".queue_cycles");
        const StatLogHistogram *sv =
            reg.logHistogramAt("serve." + name + ".service_cycles");
        const StatLogHistogram *so =
            reg.logHistogramAt("serve." + name + ".sojourn_cycles");
        if (q) {
            s.p50QueueCycles = q->quantile(0.50);
            s.p99QueueCycles = q->quantile(0.99);
            s.p999QueueCycles = q->quantile(0.999);
        }
        if (sv) {
            s.p50ServiceCycles = sv->quantile(0.50);
            s.p99ServiceCycles = sv->quantile(0.99);
        }
        if (so)
            s.meanSojournCycles = so->mean();
        report.tenants.push_back(std::move(s));
    }
    return report;
}

} // namespace ccache::serve
