#include "serve/server.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace ccache::serve {

Json
ServeReport::toJson() const
{
    Json doc = Json::object();
    doc["offered"] = offered;
    doc["admitted"] = admitted;
    doc["served"] = served;
    doc["rejected"] = rejected;
    doc["elapsed_cycles"] = elapsed;
    doc["throughput_rpmc"] = throughputRpmc;
    Json tens = Json::object();
    for (const TenantSummary &t : tenants) {
        Json e = Json::object();
        e["admitted"] = t.admitted;
        e["served"] = t.served;
        e["rejected"] = t.rejected;
        e["p50_queue_cycles"] = t.p50QueueCycles;
        e["p99_queue_cycles"] = t.p99QueueCycles;
        e["p999_queue_cycles"] = t.p999QueueCycles;
        e["p50_service_cycles"] = t.p50ServiceCycles;
        e["p99_service_cycles"] = t.p99ServiceCycles;
        e["mean_sojourn_cycles"] = t.meanSojournCycles;
        tens[t.name] = std::move(e);
    }
    doc["tenants"] = std::move(tens);
    doc["rejections"] = rejections;
    return doc;
}

CcServer::CcServer(sim::System &sys, const ServerParams &params)
    : sys_(sys), params_(params)
{
    CC_ASSERT(!params_.tenants.empty(), "server needs at least one tenant");
    std::set<std::string> names;
    for (const TenantQos &t : params_.tenants)
        CC_ASSERT(names.insert(t.name).second,
                  "tenant names must be unique: ", t.name);

    alloc_ = std::make_unique<geometry::LocalityAllocator>(
        params_.heapBase, params_.heapBytes);
    StatGroup serve = sys_.stats().group("serve");
    queue_ = std::make_unique<RequestQueue>(params_.queue, params_.tenants,
                                            serve);
    sched_ = std::make_unique<BatchScheduler>(
        sys_, *queue_, params_.tenants, params_.sched, serve);
    for (const TenantQos &t : params_.tenants) {
        StatGroup g = serve.group(t.name);
        tenantStats_.push_back(TenantStats{
            &g.counter("served", "requests completed"),
            &g.logHistogram("queue_cycles",
                            "admission -> dispatch wait per request"),
            &g.logHistogram("service_cycles",
                            "dispatch -> completion per request"),
            &g.logHistogram("sojourn_cycles",
                            "admission -> completion per request"),
        });
    }
}

ServeReport
CcServer::run(const std::vector<workload::RequestSpec> &specs)
{
    ServeReport report;
    report.offered = specs.size();

    RequestBuildParams build;
    build.warmL3 = params_.warmL3;
    build.allocGroups = params_.allocGroups;

    std::size_t next = 0;
    Cycles now = 0;
    while (true) {
        // Admit every arrival up to the current time, in arrival order.
        while (next < specs.size() && specs[next].arrival <= now) {
            const workload::RequestSpec &spec = specs[next];
            RequestId id = nextId_++;
            ++next;
            RejectReason why = RejectReason::NoCapacity;
            std::optional<Request> req =
                buildRequest(sys_, *alloc_, build, spec, id, &why);
            if (!req) {
                // Operand heap exhausted: a structured shed, not a
                // panic (the heap recovers as in-flight waves recycle).
                queue_->recordShed(id, spec.tenant, why, spec.arrival);
                ++report.rejected;
                continue;
            }
            if (auto reason = queue_->offer(*req, now)) {
                (void)reason;   // counted inside the queue
                recycleRequest(*alloc_, *req);
                ++report.rejected;
            } else {
                ++report.admitted;
            }
        }
        if (queue_->empty()) {
            if (next == specs.size())
                break;
            now = specs[next].arrival;   // idle until the next arrival
            continue;
        }

        BatchScheduler::Wave wave = sched_->dispatch(now);
        CC_ASSERT(!wave.requests.empty(), "dispatch made no progress");
        CC_ASSERT(wave.results.size() == wave.requests.size(),
                  "wave result/request mismatch");
        for (std::size_t i = 0; i < wave.requests.size(); ++i) {
            const Request &req = wave.requests[i];
            TenantStats &ts = tenantStats_[req.tenant];
            Cycles queue_wait = now - req.arrival;
            Cycles service = wave.results[i].latency;
            ts.served->inc();
            ts.queueCycles->sample(queue_wait);
            ts.serviceCycles->sample(service);
            ts.sojournCycles->sample(queue_wait + service);
            recycleRequest(*alloc_, req);
            ++report.served;
        }
        now += wave.makespan;
        sys_.advance(0, wave.makespan);
    }

    report.elapsed = now;
    report.throughputRpmc = now
        ? static_cast<double>(report.served) * 1e6 /
              static_cast<double>(now)
        : 0.0;
    report.rejections = queue_->rejectionsJson();

    const StatRegistry &reg = sys_.stats();
    for (std::size_t t = 0; t < params_.tenants.size(); ++t) {
        const std::string &name = params_.tenants[t].name;
        ServeReport::TenantSummary s;
        s.name = name;
        s.admitted = reg.value("serve." + name + ".admitted");
        s.served = reg.value("serve." + name + ".served");
        s.rejected = reg.value("serve." + name + ".rejected");
        const StatLogHistogram *q =
            reg.logHistogramAt("serve." + name + ".queue_cycles");
        const StatLogHistogram *sv =
            reg.logHistogramAt("serve." + name + ".service_cycles");
        const StatLogHistogram *so =
            reg.logHistogramAt("serve." + name + ".sojourn_cycles");
        if (q) {
            s.p50QueueCycles = q->quantile(0.50);
            s.p99QueueCycles = q->quantile(0.99);
            s.p999QueueCycles = q->quantile(0.999);
        }
        if (sv) {
            s.p50ServiceCycles = sv->quantile(0.50);
            s.p99ServiceCycles = sv->quantile(0.99);
        }
        if (so)
            s.meanSojournCycles = so->mean();
        report.tenants.push_back(std::move(s));
    }
    return report;
}

} // namespace ccache::serve
