/**
 * @file
 * CC-op batch scheduler (DESIGN.md §11).
 *
 * Each scheduling round drains the request queue into one wave of
 * independent CC instructions and issues it through
 * CcController::executeStream, so the requests of a wave share the
 * command bus, the peak-power slots and the sub-array partition
 * schedule instead of serializing end-to-end — the §IV-E concurrency
 * the paper's throughput comes from. Requests whose operands are not
 * co-located still join the wave; the controller's own placement logic
 * degrades them to the near-place unit per block op. Requests needing
 * more than one ISA vector contribute one instruction slot per chunk
 * and overlap inside the wave like any other instructions.
 *
 * Tenant arbitration is byte-weighted deficit round-robin with a
 * starvation guard: when the oldest pending request's age exceeds
 * starvationAgeCycles it preempts the round-robin order outright, so
 * a heavy tenant can never park a light one indefinitely.
 *
 * The FifoSerial policy is the baseline the batching claim is measured
 * against: strict global arrival order, one request at a time, every
 * instruction issued through CcController::execute in isolation.
 */

#ifndef CCACHE_SERVE_BATCH_SCHEDULER_HH
#define CCACHE_SERVE_BATCH_SCHEDULER_HH

#include <vector>

#include "common/stats.hh"
#include "serve/request_queue.hh"
#include "sim/system.hh"

namespace ccache::serve {

/** Wave-composition policy. */
enum class ServePolicy {
    FifoSerial,  ///< arrival order, one op at a time (baseline)
    Batch,       ///< DRR-arbitrated sub-array-parallel waves
};

const char *toString(ServePolicy policy);

/** Parse "fifo" / "batch"; returns false on anything else. */
bool parsePolicy(const std::string &text, ServePolicy *out);

struct SchedulerParams
{
    ServePolicy policy = ServePolicy::Batch;

    /** Max instruction slots coalesced into one wave (a chunked
     *  request consumes one slot per chunk). */
    unsigned waveSize = 16;

    /** Per-tenant cap within one wave (QoS in-flight cap). */
    unsigned perTenantWaveCap = 8;

    /** DRR credit granted per round, multiplied by the tenant weight
     *  (bytes). A weight-1 tenant earns one average request per round
     *  at the default. */
    std::size_t drrQuantumBytes = 4096;

    /** Pending age beyond which a request preempts DRR order. */
    Cycles starvationAgeCycles = 200000;
};

class BatchScheduler
{
  public:
    BatchScheduler(sim::System &sys, RequestQueue &queue,
                   const std::vector<TenantQos> &tenants,
                   const SchedulerParams &params, StatGroup stats);

    const SchedulerParams &params() const { return params_; }

    /** One dispatched wave: the requests, their per-request results
     *  (same order, chunk results folded) and the wave's overlapped
     *  makespan. */
    struct Wave
    {
        std::vector<Request> requests;
        std::vector<cc::CcExecResult> results;
        Cycles makespan = 0;
    };

    /** Select and execute the next wave at time @p now. Returns an
     *  empty wave when the queue is empty. */
    Wave dispatch(Cycles now);

  private:
    /** Wave composition under the Batch policy. */
    std::vector<Request> selectBatch(Cycles now);

    /** The oldest request overall (FifoSerial order). */
    std::vector<Request> selectFifo();

    sim::System &sys_;
    RequestQueue &queue_;
    SchedulerParams params_;

    std::vector<std::string> names_;
    std::vector<unsigned> weight_;
    std::vector<std::size_t> deficit_;
    TenantId rrCursor_ = 0;

    StatCounter *waves_;
    StatCounter *chunkedRequests_;
    StatCounter *starvationPicks_;
    StatHistogram *occupancy_;
    StatLogHistogram *makespanHist_;
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_BATCH_SCHEDULER_HH
