/**
 * @file
 * Fault-tolerant sharded serving front end (DESIGN.md §12).
 *
 * The ShardRouter places tenants across N independent sim::System
 * shards by consistent hashing (a vnode ring keyed by tenant name;
 * each tenant's failover order is its clockwise successor walk) and
 * runs every request through a reliability pipeline:
 *
 *  - admission deadline: a request that cannot be dispatched within
 *    admissionDeadline cycles of its offered arrival is shed
 *    (deadline_expired) instead of serving arbitrarily stale work;
 *  - per-shard timeout: a request whose service latency exceeds
 *    shardTimeout counts as a shard failure and re-dispatches;
 *  - seeded retries: failed requests rebuild on the next live shard in
 *    their failover order after a deterministic exponential backoff
 *    with hash-derived jitter (BackoffPolicy — no RNG stream);
 *  - hedging: a high-QoS request still incomplete hedgeAge cycles
 *    after admission launches a twin on its sibling shard; the first
 *    copy to commit wins and the loser is cancelled or discarded;
 *  - circuit breaking + brownout: per-shard breakers trip on failure
 *    streaks (or instantly on a crash). An open breaker browns the
 *    shard out: high-QoS tenants (weight >= brownoutWeightFloor)
 *    reroute along the ring, lower tenants shed (breaker_open) —
 *    lowest QoS first, as structured shed records. Half-open probes
 *    re-close the breaker after probeSuccesses clean requests.
 *
 * Failures are injected by a ChaosSchedule in simulated time (shard
 * crash windows; margin-fail and stuck-at storms through each shard's
 * FaultInjector::setParams). The event loop advances through a merged
 * timeline of arrivals, chaos boundaries, wave completions, retry
 * timers, hedge timers and breaker cooloffs in a fixed deterministic
 * order, so a chaos run is byte-identical at any thread count (§8).
 * Waves execute eagerly at dispatch (their makespan is known up
 * front); a crash boundary inside a wave's window dooms the wave and
 * fails its requests — chaos is wave-granular by construction.
 *
 * With verifyGolden set, every request's operands are filled with
 * bytes derived from (patternSeed, id) — identical on every shard it
 * lands on — and every commit is checked bit-for-bit against a
 * host-side reference model (request_builder.hh), so "availability"
 * counts only provably correct completions. A request's Zipf content
 * key (RequestSpec::key) folds into that pattern seed, so hot keys
 * carry hot data and stay verifiable wherever they are re-placed.
 *
 * Fleet controller (DESIGN.md §15) — three cooperating mechanisms
 * layered over the reliability pipeline:
 *
 *  - cross-shard fan-out/fan-in: a request with spec.fanout > 1 splits
 *    into that many legs placed on distinct shards (clockwise along
 *    the tenant's failover order). Each leg runs the full pipeline
 *    independently (per-leg deadlines, retries, hedges); the parent is
 *    a fan-in barrier that commits only when every leg golden-verifies
 *    and degrades to a structured partial_result shed record the
 *    moment any leg fails terminally (remaining queued legs cancel);
 *  - live tenant migration: with rebalancePeriod set, a seeded
 *    hot-spot detector (EWMA of per-shard queue depth, guarded by the
 *    per-shard p99 service latency) drains the hottest tenant to the
 *    coldest shard. New arrivals flip to the target instantly while a
 *    dual-dispatch handoff window keeps a shadow copy on the source
 *    (first commit wins), so no request is dropped mid-migration even
 *    if either end crashes; at the drain deadline leftover queued
 *    requests transplant to the target, shedding migration_drain only
 *    when the target refuses them;
 *  - global backpressure: with globalQueueCap set, a fleet-wide
 *    admission budget spans all shard queues. An arrival over budget
 *    evicts the youngest queued request of the lowest-QoS tenant that
 *    is strictly below the arrival's weight (shed global_queue_full);
 *    with no lower-QoS victim the arrival itself sheds. One saturated
 *    shard therefore sheds the fleet's lowest-QoS work first instead
 *    of its own tenants indiscriminately.
 */

#ifndef CCACHE_SERVE_SHARD_ROUTER_HH
#define CCACHE_SERVE_SHARD_ROUTER_HH

#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.hh"
#include "serve/chaos.hh"
#include "serve/reliability.hh"
#include "serve/request_builder.hh"
#include "serve/server.hh"

namespace ccache::serve {

/** Fleet-level knobs layered over the per-shard ServerParams. */
struct RouterParams
{
    unsigned shards = 2;

    /** Consistent-hash ring geometry. @{ */
    unsigned vnodesPerShard = 16;
    std::uint64_t ringSeed = 0x5eedULL;
    /** @} */

    /** Shed a request not dispatched within this many cycles of its
     *  offered arrival (0 = no deadline). */
    Cycles admissionDeadline = 60000;

    /** Service latency above this counts as a shard failure and the
     *  request re-dispatches (0 = no timeout). */
    Cycles shardTimeout = 0;

    RetryParams retry;
    BreakerParams breaker;

    /** Hedge a high-QoS request still incomplete this long after
     *  admission (0 = hedging off). */
    Cycles hedgeAge = 0;

    /** Brownout split: tenants with weight >= this floor reroute (and
     *  may hedge); lower tenants shed when their home shard is dark. */
    unsigned brownoutWeightFloor = 2;

    /** Golden verification: fill operands from patternSeed and check
     *  every commit against the host-side reference model. @{ */
    bool verifyGolden = false;
    std::uint64_t patternSeed = 0x601dULL;
    /** @} */

    /** Chaos storm intensity: fault rates applied at magnitude 1 (the
     *  event magnitude scales them, clamped to sane ceilings). @{ */
    double slowMarginFailBase = 0.02;
    double partialStuckAtBase = 0.004;
    /** @} */

    /** Keep a human-readable event log (determinism tests). */
    bool recordEvents = false;

    /** Fleet controller (DESIGN.md §15). @{ */

    /** Hot-spot detector tick period; 0 disables rebalancing. */
    Cycles rebalancePeriod = 0;

    /** EWMA smoothing for per-shard queue depth (per tick). */
    double ewmaAlpha = 0.3;

    /** Migrate when the hottest shard's depth EWMA is at least
     *  hotspotRatio x (coldest EWMA + 1) and at least hotspotMinLoad
     *  absolute (and its p99 service latency is no better than the
     *  cold shard's). @{ */
    double hotspotRatio = 3.0;
    double hotspotMinLoad = 4.0;
    /** @} */

    /** Dual-dispatch handoff window after a migration starts; at its
     *  end leftover queued requests transplant source -> target. */
    Cycles migrationDrain = 20000;

    /** Minimum gap between migrations (detector hysteresis). */
    Cycles migrationCooldown = 60000;

    /** Fleet-wide queued-request budget across every shard queue
     *  (0 = no global backpressure). */
    std::size_t globalQueueCap = 0;

    /** Report availability separately per [boundary, boundary) window
     *  (sorted cycle boundaries; empty = single-window report only).
     *  Requests are classified by offered arrival time. */
    std::vector<Cycles> phaseBoundaries;
    /** @} */
};

/** End-of-run fleet summary (also exported as JSON). */
struct FleetReport
{
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    std::uint64_t shed = 0;

    /** served / offered (every offered request is accounted one way
     *  or the other, so this is completion availability). */
    double availability = 0.0;

    std::uint64_t retries = 0;
    std::uint64_t reroutes = 0;
    std::uint64_t hedgesLaunched = 0;
    std::uint64_t hedgeWins = 0;
    std::uint64_t hedgeCancelled = 0;
    std::uint64_t hedgeWasted = 0;
    std::uint64_t breakerTrips = 0;
    std::uint64_t goldenChecked = 0;
    std::uint64_t goldenMismatch = 0;
    Cycles elapsed = 0;

    /** Fan-out/fan-in barrier accounting (§15). @{ */
    std::uint64_t fanoutParents = 0;   ///< offered multi-shard requests
    std::uint64_t fanoutLegs = 0;      ///< legs launched
    std::uint64_t fanoutPartial = 0;   ///< parents degraded to partial
    std::uint64_t fanoutDiscarded = 0; ///< leg results discarded after
                                       ///< the barrier resolved
    /** @} */

    /** Live-migration accounting (§15). @{ */
    std::uint64_t migrations = 0;
    std::uint64_t migrationDualDispatch = 0;  ///< shadow copies placed
    std::uint64_t migrationTransplants = 0;   ///< drain-end transfers
    /** @} */

    /** Global-backpressure accounting (§15). @{ */
    std::uint64_t globalEvictions = 0;  ///< lower-QoS victims evicted
    std::uint64_t globalSheds = 0;      ///< arrivals shed at the budget
    /** @} */

    struct ShardSummary
    {
        unsigned index = 0;
        std::uint64_t served = 0;
        std::uint64_t failed = 0;
        std::uint64_t waves = 0;
        std::uint64_t downCycles = 0;
        std::uint64_t breakerTrips = 0;
        std::uint64_t p50ServiceCycles = 0;
        std::uint64_t p99ServiceCycles = 0;
    };
    std::vector<ShardSummary> shards;

    struct TenantSummary
    {
        std::string name;
        std::uint64_t served = 0;
        std::uint64_t shed = 0;
        std::uint64_t p50SojournCycles = 0;
        std::uint64_t p99SojournCycles = 0;
        std::uint64_t p999SojournCycles = 0;
    };
    std::vector<TenantSummary> tenants;

    /** Per-window availability (RouterParams::phaseBoundaries);
     *  requests are classified by offered arrival time, counted at
     *  their terminal commit/shed. */
    struct PhaseSummary
    {
        Cycles start = 0;
        Cycles end = 0;   ///< exclusive; 0 = open-ended
        std::uint64_t offered = 0;
        std::uint64_t served = 0;
        std::uint64_t shed = 0;
        double availability = 1.0;
    };
    std::vector<PhaseSummary> phases;

    /** Structured shed records: router pipeline sheds plus each
     *  shard's admission-queue log. */
    Json rejections;

    /** The chaos schedule the run was subjected to. */
    Json chaos;

    Json toJson() const;
};

class ShardRouter
{
  public:
    ShardRouter(const sim::SystemConfig &sys_config,
                const ServerParams &serve_params,
                const RouterParams &router_params);
    ~ShardRouter();

    /** Replay @p specs (sorted by arrival) to completion under
     *  @p chaos. One run per router instance. */
    FleetReport run(const std::vector<workload::RequestSpec> &specs,
                    const ChaosSchedule &chaos);

    unsigned shardCount() const { return static_cast<unsigned>(shards_.size()); }
    sim::System &shardSystem(unsigned i) { return *shards_[i].sys; }

    /** A shard's circuit breaker (observability / tests). */
    const CircuitBreaker &shardBreaker(unsigned i) const
    {
        return shards_[i].breaker;
    }

    /** A tenant's ring failover order (home shard first). */
    const std::vector<unsigned> &failoverOrder(TenantId t) const
    {
        return order_[t];
    }

    /** Fleet-level stats registry (histograms, per-shard counters). */
    StatRegistry &fleetStats() { return fleetStats_; }

    /** Event log (only populated with RouterParams::recordEvents). */
    const std::vector<std::string> &eventLog() const { return events_; }

  private:
    struct Shard
    {
        std::unique_ptr<sim::System> sys;
        std::unique_ptr<geometry::LocalityAllocator> alloc;
        std::unique_ptr<RequestQueue> queue;
        std::unique_ptr<BatchScheduler> sched;
        CircuitBreaker breaker;

        bool up = true;
        Cycles downSince = 0;
        bool busy = false;
        Cycles busyUntil = 0;
        bool waveDoomed = false;
        BatchScheduler::Wave wave;

        /** Restore point + active storm windows for chaos. @{ */
        fault::FaultParams baseFaults;
        std::vector<const ChaosEvent *> storms;
        /** @} */

        StatCounter *servedCtr = nullptr;
        StatCounter *failedCtr = nullptr;
        StatCounter *wavesCtr = nullptr;
        StatCounter *downCyclesCtr = nullptr;
        StatLogHistogram *serviceHist = nullptr;
    };

    static constexpr RequestId kNoParent =
        std::numeric_limits<RequestId>::max();

    /** Lifecycle of one offered request across attempts and copies. */
    struct Track
    {
        workload::RequestSpec spec;
        RequestId id = 0;
        unsigned attempts = 0;   ///< placements consumed (incl. first)
        unsigned inFlight = 0;   ///< copies queued or executing
        unsigned primaryShard = 0;
        bool hedged = false;
        bool done = false;
        /** Fan-out parent id; kNoParent for ordinary requests and for
         *  parents themselves (a leg's terminal events roll up to the
         *  parent's barrier instead of the fleet counters). */
        RequestId parent = kNoParent;
    };

    /** Fan-in barrier state of one multi-shard request. */
    struct Fanout
    {
        unsigned legs = 0;
        unsigned committed = 0;
        std::vector<RequestId> legIds;
    };

    /** One in-progress tenant migration (at most one at a time). */
    struct Migration
    {
        bool active = false;
        TenantId tenant = 0;
        unsigned from = 0;
        unsigned to = 0;
        Cycles drainUntil = 0;
    };

    /** (ready cycle, request id, shard to avoid) — min-heap. */
    struct Timer
    {
        Cycles at = 0;
        RequestId id = 0;
        int avoidShard = -1;
        bool operator>(const Timer &o) const
        {
            return at != o.at ? at > o.at : id > o.id;
        }
    };
    using TimerHeap =
        std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>;

    bool hiQos(TenantId t) const;
    void note(Cycles now, const std::string &what);

    /** First dispatchable shard in @p t's failover order (skipping
     *  @p avoid); lo-QoS tenants only consider their home shard unless
     *  @p fullSpan (fan-out legs span regardless of QoS). The walk
     *  starts @p startOffset positions along the order, which spreads
     *  fan-out legs over distinct shards. On failure @p why says
     *  whether brownout or a dead fleet refused. */
    std::optional<unsigned> routeShard(TenantId t, Cycles now, int avoid,
                                       RejectReason *why,
                                       std::size_t startOffset = 0,
                                       bool fullSpan = false) const;

    /** Build + enqueue one copy of @p tr on shard @p s. */
    bool placeCopy(Track &tr, unsigned s, Cycles now, bool hedge);

    /** A copy of @p tr failed on @p shard: schedule a retry or shed. */
    void failCopy(Track &tr, Cycles now, int shard, RejectReason reason);

    void shedTrack(Track &tr, Cycles now, RejectReason reason);
    void commitCopy(Track &tr, unsigned s, const Request &req,
                    const cc::CcExecResult &result, Cycles now);

    void applyChaosStart(const ChaosEvent &ev, Cycles now);
    void applyChaosEnd(const ChaosEvent &ev, Cycles now);
    void refreshFaultParams(Shard &shard);
    void crashFlush(unsigned s, Cycles now);

    void completeWave(unsigned s, Cycles now);
    void pruneDeadlines(unsigned s, Cycles now);
    bool dispatchShard(unsigned s, Cycles now);

    /** Fan-out/fan-in barrier (§15). @{ */
    void spawnFanout(Track &parent, Cycles now);
    void legCommitted(RequestId parentId, Cycles now);
    void legFailed(RequestId parentId, Cycles now, RejectReason why);
    /** Pull every still-queued copy of @p id off every shard queue. */
    unsigned cancelQueuedCopies(RequestId id);
    /** @} */

    /** Live migration (§15). @{ */
    void rebalanceTick(Cycles now);
    void startMigration(TenantId t, unsigned from, unsigned to,
                        Cycles now);
    void finishMigration(Cycles now);
    /** @} */

    /** Global backpressure (§15): make room for (or refuse) one copy
     *  of @p tr at the fleet-wide budget. True = place the copy. */
    bool admitGlobal(Track &tr, Cycles now);
    std::size_t totalQueued() const;

    /** Per-phase availability (§15). @{ */
    std::size_t phaseOf(Cycles arrival) const;
    void notePhaseServed(Cycles arrival);
    void notePhaseShed(Cycles arrival);
    /** @} */

    ServerParams serve_;
    RouterParams params_;
    BackoffPolicy backoff_;

    std::vector<Shard> shards_;
    /** Sorted vnode ring: (point, shard). */
    std::vector<std::pair<std::uint64_t, unsigned>> ring_;
    /** Per-tenant failover order (home first). */
    std::vector<std::vector<unsigned>> order_;

    std::unordered_map<RequestId, Track> tracks_;
    std::unordered_map<RequestId, Fanout> fanouts_;
    TimerHeap retries_;
    TimerHeap hedges_;
    RequestId nextId_ = 0;
    bool ran_ = false;

    /** Fleet-controller state (§15). @{ */
    Migration migration_;
    std::vector<double> ewma_;       ///< per-shard queue-depth EWMA
    Cycles nextRebalance_ = 0;
    Cycles cooldownUntil_ = 0;
    /** @} */

    StatRegistry fleetStats_;
    std::unique_ptr<ShedLog> fleetShed_;
    StatLogHistogram *fleetSojourn_ = nullptr;
    std::vector<StatCounter *> tenantServed_;
    std::vector<StatLogHistogram *> tenantSojourn_;
    FleetReport report_;
    std::vector<std::string> events_;
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_SHARD_ROUTER_HH
