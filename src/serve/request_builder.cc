#include "serve/request_builder.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::serve {

namespace {

using Bytes = std::vector<std::uint8_t>;

/** Seeded operand bytes: a pure function of (patternSeed, id, stream),
 *  so the same request carries the same data on every shard. */
Bytes
patternBytes(std::uint64_t pattern_seed, RequestId id, unsigned stream,
             std::size_t n)
{
    Rng rng(mix64(mix64(pattern_seed ^ id) ^ (0xb0b0000 + stream)));
    Bytes out(n);
    // One xoshiro draw yields eight operand bytes (low byte first, a
    // platform-independent unpack). Operand fill is the serve harness's
    // hottest loop (DESIGN.md §13), and the bytes stay a pure function
    // of (patternSeed, id, stream), so every shard still builds
    // identical request data.
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w = rng.next();
        for (unsigned k = 0; k < 8; ++k)
            out[i + k] = static_cast<std::uint8_t>(w >> (k * 8));
    }
    if (i < n) {
        std::uint64_t w = rng.next();
        for (; i < n; ++i, w >>= 8)
            out[i] = static_cast<std::uint8_t>(w);
    }
    return out;
}

std::uint64_t
wordAt(const Bytes &buf, std::size_t word)
{
    std::uint64_t w = 0;
    std::memcpy(&w, buf.data() + word * 8, 8);
    return w;
}

/** Host-side reference of one CC-R chunk's packed result register:
 *  bit w set iff 8-byte word w of src1 equals word w of src2 (cmp) or
 *  word (w % 8) of the 64-byte key (search). */
std::uint64_t
refChunkMask(const Bytes &a, const Bytes &b, bool search)
{
    std::uint64_t mask = 0;
    for (std::size_t w = 0; w < a.size() / 8; ++w) {
        std::uint64_t bw = search ? wordAt(b, w % kWordsPerBlock)
                                  : wordAt(b, w);
        if (wordAt(a, w) == bw)
            mask |= std::uint64_t{1} << w;
    }
    return mask;
}

/** Write the golden-verifiable operand fill for one placed request.
 *  cmp/search operands are seeded with deliberate partial matches so
 *  the packed result register exercises both bit values. */
void
fillOperands(sim::System &sys, const RequestBuildParams &params,
             RequestId id, cc::CcOpcode op, Addr src1, Addr src2,
             std::size_t n)
{
    Bytes a = patternBytes(params.patternSeed, id, 1, n);
    switch (op) {
      case cc::CcOpcode::Cmp: {
        // Word w of src2 equals src1 on a fixed id-dependent stride.
        Bytes b = patternBytes(params.patternSeed, id, 2, n);
        for (std::size_t w = 0; w < n / 8; ++w) {
            if ((w + id) % 3 == 0)
                std::memcpy(b.data() + w * 8, a.data() + w * 8, 8);
        }
        sys.load(src1, a.data(), a.size());
        sys.load(src2, b.data(), b.size());
        return;
      }
      case cc::CcOpcode::Search: {
        // Plant the key into an id-dependent subset of src1's blocks.
        Bytes key = patternBytes(params.patternSeed, id, 2,
                                 cc::kSearchKeyBytes);
        for (std::size_t blk = 0; blk < n / kBlockSize; ++blk) {
            if ((blk + id) % 5 == 0)
                std::memcpy(a.data() + blk * kBlockSize, key.data(),
                            kBlockSize);
        }
        sys.load(src1, a.data(), a.size());
        sys.load(src2, key.data(), key.size());
        return;
      }
      case cc::CcOpcode::And:
      case cc::CcOpcode::Or:
      case cc::CcOpcode::Xor: {
        Bytes b = patternBytes(params.patternSeed, id, 2, n);
        sys.load(src1, a.data(), a.size());
        sys.load(src2, b.data(), b.size());
        return;
      }
      default:  // Copy / Not / Buz: one source operand
        sys.load(src1, a.data(), a.size());
        return;
    }
}

} // namespace

std::optional<Request>
buildRequest(sim::System &sys, geometry::LocalityAllocator &alloc,
             const RequestBuildParams &params,
             const workload::RequestSpec &spec, RequestId id,
             RejectReason *why_not)
{
    Request req;
    req.id = id;
    req.tenant = spec.tenant;
    req.arrival = spec.arrival;
    req.bytes = spec.bytes;
    req.scattered = spec.scattered;

    const geometry::GroupId group =
        static_cast<geometry::GroupId>(id % params.allocGroups);

    bool exhausted = false;
    auto alloc_local = [&](std::size_t n) -> Addr {
        if (exhausted)
            return 0;
        std::optional<Addr> a = alloc.tryAllocate(n, group);
        if (!a) {
            exhausted = true;
            return 0;
        }
        req.buffers.emplace_back(*a, n);
        return *a;
    };
    // Scattered operand: same size, page offset guaranteed to differ
    // from the request's locality group, so the controller's operand-
    // locality check fails and the op degrades to the near-place unit.
    auto alloc_scattered = [&](std::size_t n) -> Addr {
        if (exhausted)
            return 0;
        Addr group_off = alloc.groupOffset(group);
        std::optional<Addr> a = alloc.tryAllocate(n + kBlockSize);
        if (!a) {
            exhausted = true;
            return 0;
        }
        req.buffers.emplace_back(*a, n + kBlockSize);
        return (*a & (kPageSize - 1)) == group_off ? *a + kBlockSize : *a;
    };
    auto alloc_second = [&](std::size_t n) {
        return spec.scattered ? alloc_scattered(n) : alloc_local(n);
    };

    // CC-R ops (cmp/search) are limited to 512 B so the result fits a
    // 64-bit register; everything else takes a full 16 KB ISA vector.
    const std::size_t n = spec.bytes;
    const std::size_t chunk_limit =
        cc::isCcR(spec.op) ? cc::kMaxCmpBytes : cc::kMaxVectorBytes;

    Addr src1 = 0, src2 = 0, dest = 0;
    switch (spec.op) {
      case cc::CcOpcode::Buz:
        src1 = alloc_local(n);
        break;
      case cc::CcOpcode::Copy:
      case cc::CcOpcode::Not:
        src1 = alloc_local(n);
        dest = alloc_second(n);
        break;
      case cc::CcOpcode::Cmp:
        src1 = alloc_local(n);
        src2 = alloc_second(n);
        break;
      case cc::CcOpcode::Search:
        src1 = alloc_local(n);
        src2 = alloc_second(cc::kSearchKeyBytes);   // 64-byte key
        break;
      default:   // And / Or / Xor
        src1 = alloc_local(n);
        src2 = alloc_second(n);
        dest = alloc_local(n);
        break;
    }

    if (exhausted) {
        recycleRequest(alloc, req);
        if (why_not)
            *why_not = RejectReason::NoCapacity;
        return std::nullopt;
    }

    if (params.fillPattern)
        fillOperands(sys, params, id, spec.op, src1, src2, n);

    if (params.warmL3) {
        for (const auto &[addr, len] : req.buffers)
            sys.warm(CacheLevel::L3, 0, addr, len);
    }

    // Chunk to the ISA limits; the first chunk is the head instruction,
    // the rest ride in req.chunks and batch into the wave as extra
    // instruction slots.
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += chunk_limit) {
        std::size_t len = std::min(chunk_limit, n - off);
        switch (spec.op) {
          case cc::CcOpcode::Buz:
            instrs.push_back(cc::CcInstruction::buz(src1 + off, len));
            break;
          case cc::CcOpcode::Copy:
            instrs.push_back(
                cc::CcInstruction::copy(src1 + off, dest + off, len));
            break;
          case cc::CcOpcode::Not:
            instrs.push_back(
                cc::CcInstruction::logicalNot(src1 + off, dest + off, len));
            break;
          case cc::CcOpcode::Cmp:
            instrs.push_back(
                cc::CcInstruction::cmp(src1 + off, src2 + off, len));
            break;
          case cc::CcOpcode::Search:
            instrs.push_back(
                cc::CcInstruction::search(src1 + off, src2, len));
            break;
          case cc::CcOpcode::And:
            instrs.push_back(cc::CcInstruction::logicalAnd(
                src1 + off, src2 + off, dest + off, len));
            break;
          case cc::CcOpcode::Or:
            instrs.push_back(cc::CcInstruction::logicalOr(
                src1 + off, src2 + off, dest + off, len));
            break;
          case cc::CcOpcode::Xor:
            instrs.push_back(cc::CcInstruction::logicalXor(
                src1 + off, src2 + off, dest + off, len));
            break;
          default:
            CC_FATAL("unsupported serve opcode ", cc::toString(spec.op));
        }
    }
    CC_ASSERT(!instrs.empty(), "request built no instructions");
    req.instr = instrs.front();
    req.chunks.assign(instrs.begin() + 1, instrs.end());
    return req;
}

void
recycleRequest(geometry::LocalityAllocator &alloc, const Request &req)
{
    for (const auto &[addr, len] : req.buffers)
        alloc.free(addr, len);
}

bool
goldenVerifyRequest(sim::System &sys, const Request &req,
                    std::uint64_t result_mask)
{
    std::vector<cc::CcInstruction> instrs;
    instrs.push_back(req.instr);
    instrs.insert(instrs.end(), req.chunks.begin(), req.chunks.end());

    if (cc::isCcR(req.instr.op)) {
        // The scheduler folds chunk result registers by OR (each chunk
        // packs one bit per 8-byte word); the reference does the same.
        std::uint64_t expect = 0;
        for (const cc::CcInstruction &in : instrs) {
            Bytes a = sys.dump(in.src1, in.size);
            bool search = in.op == cc::CcOpcode::Search;
            Bytes b = sys.dump(in.src2,
                               search ? cc::kSearchKeyBytes : in.size);
            expect |= refChunkMask(a, b, search);
        }
        return expect == result_mask;
    }

    for (const cc::CcInstruction &in : instrs) {
        Bytes a = sys.dump(in.src1, in.size);
        Bytes want;
        Addr where = in.dest;
        switch (in.op) {
          case cc::CcOpcode::Buz:
            want.assign(in.size, 0);
            where = in.src1;
            break;
          case cc::CcOpcode::Copy:
            want = a;
            break;
          case cc::CcOpcode::Not:
            want.resize(in.size);
            for (std::size_t i = 0; i < in.size; ++i)
                want[i] = static_cast<std::uint8_t>(~a[i]);
            break;
          case cc::CcOpcode::And:
          case cc::CcOpcode::Or:
          case cc::CcOpcode::Xor: {
            Bytes b = sys.dump(in.src2, in.size);
            want.resize(in.size);
            for (std::size_t i = 0; i < in.size; ++i) {
                want[i] = in.op == cc::CcOpcode::And ? (a[i] & b[i])
                        : in.op == cc::CcOpcode::Or  ? (a[i] | b[i])
                                                     : (a[i] ^ b[i]);
            }
            break;
          }
          default:
            return false;   // not a serve opcode
        }
        if (sys.dump(where, in.size) != want)
            return false;
    }
    return true;
}

} // namespace ccache::serve
