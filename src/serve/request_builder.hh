/**
 * @file
 * Request placement: turn one workload::RequestSpec into a fully-placed
 * Request on a concrete sim::System (DESIGN.md §11, §12).
 *
 * Extracted from CcServer so the sharded router can re-place the same
 * spec on any shard: operand buffers come from that shard's
 * LocalityAllocator (co-located by rotating group), the instruction
 * list is chunked to the ISA limits, and the buffers are optionally
 * pre-warmed into L3. Heap exhaustion is a structured outcome
 * (RejectReason::NoCapacity), never a panic: a partially-built request
 * returns its buffers and the caller sheds the request.
 *
 * For golden-verified runs the builder also fills the source operands
 * with bytes drawn from hash(patternSeed, request id) — the same bytes
 * on every shard the request lands on — so a host-side reference model
 * can check every completed request bit-for-bit (goldenVerifyRequest).
 */

#ifndef CCACHE_SERVE_REQUEST_BUILDER_HH
#define CCACHE_SERVE_REQUEST_BUILDER_HH

#include <optional>

#include "geometry/locality_allocator.hh"
#include "serve/request.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {

/** Placement knobs shared by CcServer and ShardRouter. */
struct RequestBuildParams
{
    /** Pre-warm operand buffers into L3 at admission (service latency
     *  then measures compute + on-chip traffic, not DRAM fills). */
    bool warmL3 = true;

    /** Rotating locality groups for request placement (bounds the
     *  allocator's group table while keeping co-location). */
    unsigned allocGroups = 32;

    /** Fill source operands with seeded bytes for golden verification
     *  (hash(patternSeed, id) — shard-independent). @{ */
    bool fillPattern = false;
    std::uint64_t patternSeed = 0;
    /** @} */
};

/**
 * Place @p spec as request @p id on @p sys. Returns std::nullopt (and
 * sets @p why_not to RejectReason::NoCapacity) when the allocator
 * cannot hold the operands; any partial allocation is rolled back.
 */
std::optional<Request> buildRequest(sim::System &sys,
                                    geometry::LocalityAllocator &alloc,
                                    const RequestBuildParams &params,
                                    const workload::RequestSpec &spec,
                                    RequestId id, RejectReason *why_not);

/** Return a request's buffers to the allocator. */
void recycleRequest(geometry::LocalityAllocator &alloc, const Request &req);

/**
 * Golden verification of one completed request (requires fillPattern):
 * re-read the operand buffers through the hierarchy's coherent debug
 * view and check the destination bytes (CC-RW ops) or the folded
 * result mask (@p result_mask, CC-R ops) against a naive host-side
 * reference. Returns true when the request's effect is bit-exact.
 */
bool goldenVerifyRequest(sim::System &sys, const Request &req,
                         std::uint64_t result_mask);

} // namespace ccache::serve

#endif // CCACHE_SERVE_REQUEST_BUILDER_HH
