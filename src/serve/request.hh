/**
 * @file
 * Request/tenant model of the serving layer (DESIGN.md §11).
 *
 * A Request is one admitted CC operation: the tenant that issued it,
 * the fully-placed Table II instruction (operand addresses assigned by
 * the server's LocalityAllocator), its arrival time, and the buffers
 * to recycle at completion. Admission can fail: every rejection
 * carries a structured RejectReason so shed load is observable, never
 * a silent drop.
 */

#ifndef CCACHE_SERVE_REQUEST_HH
#define CCACHE_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cc/isa.hh"
#include "common/types.hh"

namespace ccache::serve {

using RequestId = std::uint64_t;
using TenantId = unsigned;

/**
 * Why the serving layer refused (or gave up on) a request. The first
 * three fire at queue admission; the rest come from the reliability
 * pipeline (DESIGN.md §12) and the operand allocator.
 */
enum class RejectReason {
    QueueFull,        ///< global queue capacity reached (backpressure)
    TenantQueueFull,  ///< the tenant's pending cap reached (QoS isolation)
    Malformed,        ///< instruction failed ISA validation
    DeadlineExpired,  ///< admission deadline passed before dispatch
    BreakerOpen,      ///< shard circuit breaker open (brownout shed)
    ShardDown,        ///< no live shard available for placement
    NoCapacity,       ///< operand heap exhausted at request build
    RetriesExhausted, ///< every retry attempt failed
    PartialResult,    ///< a fan-out leg failed terminally; the parent
                      ///< request degrades to a structured partial
                      ///< result instead of committing (DESIGN.md §15)
    GlobalQueueFull,  ///< fleet-wide admission budget reached; lowest-
                      ///< QoS work is shed fleet-wide (§15)
    MigrationDrain,   ///< request could not be completed inside a
                      ///< tenant migration's drain window (§15)
};

/** Number of RejectReason values (dense-array sizing). */
inline constexpr std::size_t kNumRejectReasons = 11;

const char *toString(RejectReason reason);

/** Per-tenant quality-of-service contract. */
struct TenantQos
{
    std::string name = "tenant";

    /** Relative service share under contention (deficit round-robin
     *  credit per scheduling round, in bytes x weight). */
    unsigned weight = 1;

    /** Pending-request cap: admission rejects beyond this, so one
     *  misbehaving tenant cannot occupy the whole queue. */
    std::size_t maxPending = 64;
};

/** One admitted in-flight request. */
struct Request
{
    RequestId id = 0;
    TenantId tenant = 0;
    Cycles arrival = 0;

    /** The placed instruction (single chunk; multi-chunk requests carry
     *  their extra chunks in @p chunks). */
    cc::CcInstruction instr;

    /** Follow-on chunks for requests larger than one ISA vector (e.g.
     *  a cc_cmp over more than 512 bytes). Empty for most requests;
     *  a chunked request occupies slots() instruction slots of its
     *  wave, and its chunks overlap like independent instructions. */
    std::vector<cc::CcInstruction> chunks;

    /** Operand footprint in bytes (for accounting). */
    std::size_t bytes = 0;

    /** Operands deliberately non-local: the controller will take the
     *  near-place path for this request's block ops. */
    bool scattered = false;

    /** Buffers to return to the allocator at completion. */
    std::vector<std::pair<Addr, std::size_t>> buffers;

    /** Instruction slots this request occupies in a wave. */
    std::size_t slots() const { return 1 + chunks.size(); }
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_REQUEST_HH
