#include "serve/batch_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccache::serve {

const char *
toString(ServePolicy policy)
{
    switch (policy) {
      case ServePolicy::FifoSerial: return "fifo";
      case ServePolicy::Batch: return "batch";
    }
    return "unknown";
}

bool
parsePolicy(const std::string &text, ServePolicy *out)
{
    if (text == "fifo") {
        *out = ServePolicy::FifoSerial;
        return true;
    }
    if (text == "batch") {
        *out = ServePolicy::Batch;
        return true;
    }
    return false;
}

BatchScheduler::BatchScheduler(sim::System &sys, RequestQueue &queue,
                               const std::vector<TenantQos> &tenants,
                               const SchedulerParams &params,
                               StatGroup stats)
    : sys_(sys), queue_(queue), params_(params),
      deficit_(tenants.size(), 0)
{
    CC_ASSERT(params_.waveSize >= 1, "wave size must be at least 1");
    for (const TenantQos &t : tenants) {
        names_.push_back(t.name);
        weight_.push_back(std::max(1u, t.weight));
    }
    waves_ = &stats.counter("waves", "scheduling rounds dispatched");
    chunkedRequests_ = &stats.counter(
        "chunked_requests", "multi-chunk requests batched into waves");
    starvationPicks_ = &stats.counter(
        "starvation_picks", "requests promoted by the starvation guard");
    occupancy_ = &stats.histogram("wave_occupancy", 1.0,
                                  std::max(16u, params_.waveSize),
                                  "requests coalesced per wave");
    makespanHist_ = &stats.logHistogram(
        "wave_makespan_cycles", "overlapped completion time per wave");
}

std::vector<Request>
BatchScheduler::selectFifo()
{
    std::vector<Request> picked;
    Cycles arrival = 0;
    TenantId tenant = 0;
    if (queue_.oldest(&arrival, &tenant))
        picked.push_back(queue_.pop(tenant));
    return picked;
}

std::vector<Request>
BatchScheduler::selectBatch(Cycles now)
{
    std::vector<Request> picked;

    // Starvation guard: an over-age oldest request preempts DRR order
    // and opens the wave.
    Cycles arrival = 0;
    TenantId starving = 0;
    std::size_t slots = 0;   ///< instruction slots consumed (1 + chunks)
    if (queue_.oldest(&arrival, &starving) && now >= arrival &&
        now - arrival > params_.starvationAgeCycles) {
        starvationPicks_->inc();
        picked.push_back(queue_.pop(starving));
        slots += picked.back().slots();
    }

    // Byte-weighted deficit round-robin over tenants with pending work.
    const std::size_t tenants = queue_.tenantCount();
    for (TenantId t = 0; t < tenants; ++t) {
        if (queue_.pending(t).empty())
            deficit_[t] = 0;   // standard DRR: idle tenants bank nothing
        else
            deficit_[t] += params_.drrQuantumBytes * weight_[t];
    }

    std::vector<unsigned> inWave(tenants, 0);
    for (const Request &r : picked)
        ++inWave[r.tenant];

    // A tenant can still contribute to this wave: backlogged and under
    // its per-wave request cap.
    auto eligible = [&](TenantId t) {
        return !queue_.pending(t).empty() &&
               inWave[t] < params_.perTenantWaveCap;
    };

    while (slots < params_.waveSize) {
        bool progress = false;
        for (std::size_t step = 0;
             step < tenants && slots < params_.waveSize; ++step) {
            TenantId t = (rrCursor_ + step) % tenants;
            if (!eligible(t))
                continue;
            const Request &front = queue_.pending(t).front();
            if (deficit_[t] < front.bytes)
                continue;
            deficit_[t] -= front.bytes;
            picked.push_back(queue_.pop(t));
            slots += picked.back().slots();
            ++inWave[t];
            progress = true;
        }
        if (!progress) {
            // Nobody had credit left. While the wave has room and some
            // tenant is still eligible, grant another (weight-
            // proportional) quantum to every eligible tenant rather
            // than dispatch a half-empty wave — DRR paces the *share*
            // between contending tenants, not the machine's occupancy.
            bool topped = false;
            for (TenantId t = 0; t < tenants; ++t) {
                if (eligible(t)) {
                    deficit_[t] += params_.drrQuantumBytes * weight_[t];
                    topped = true;
                }
            }
            if (!topped)
                break;
        }
    }
    rrCursor_ = tenants ? (rrCursor_ + 1) % tenants : 0;

    // Safety net (unreachable in practice): always make progress.
    if (picked.empty()) {
        Cycles a = 0;
        TenantId t = 0;
        if (queue_.oldest(&a, &t))
            picked.push_back(queue_.pop(t));
    }
    return picked;
}

BatchScheduler::Wave
BatchScheduler::dispatch(Cycles now)
{
    Wave wave;
    if (queue_.empty())
        return wave;

    wave.requests = params_.policy == ServePolicy::Batch ? selectBatch(now)
                                                         : selectFifo();
    if (wave.requests.empty())
        return wave;

    cc::CcController &ctrl = sys_.cc();
    constexpr CoreId kServeCore = 0;

    // Tag the watchdog with the wave's provenance: a stall thrown from
    // inside this wave's instruction stream then names the requests and
    // tenants it was executing, not just the raw transaction (§12).
    struct ServeContextGuard
    {
        verify::ProgressWatchdog *dog;
        ~ServeContextGuard()
        {
            if (dog)
                dog->clearServeContext();
        }
    } guard{sys_.watchdog()};
    if (guard.dog) {
        Json ctx = Json::object();
        ctx["wave_at_cycle"] = now;
        Json reqs = Json::array();
        for (const Request &r : wave.requests) {
            Json e = Json::object();
            e["request"] = r.id;
            e["tenant"] = r.tenant < names_.size()
                ? names_[r.tenant] : std::to_string(r.tenant);
            reqs.push(std::move(e));
        }
        ctx["requests"] = std::move(reqs);
        guard.dog->setServeContext(std::move(ctx));
    }

    if (params_.policy == ServePolicy::Batch) {
        // One overlapped stream for the whole wave: each request
        // contributes 1 + chunks instruction slots; its chunks are
        // independent (disjoint 64-byte blocks), so they overlap with
        // each other and with every other request in the wave.
        std::vector<cc::CcInstruction> instrs;
        for (const Request &r : wave.requests) {
            instrs.push_back(r.instr);
            instrs.insert(instrs.end(), r.chunks.begin(), r.chunks.end());
            if (!r.chunks.empty())
                chunkedRequests_->inc();
        }
        std::vector<cc::CcExecResult> per_instr =
            ctrl.executeStream(kServeCore, instrs, &wave.makespan);
        // Fold each request's chunk results back into one record. In
        // stream mode a result's latency is its completion offset in
        // the shared schedule, so the fold keeps the max.
        std::size_t at = 0;
        for (const Request &r : wave.requests) {
            cc::CcExecResult folded = per_instr[at++];
            for (std::size_t c = 0; c < r.chunks.size(); ++c) {
                const cc::CcExecResult &cr = per_instr[at++];
                folded.latency = std::max(folded.latency, cr.latency);
                folded.blockOps += cr.blockOps;
                folded.inPlaceOps += cr.inPlaceOps;
                folded.nearPlaceOps += cr.nearPlaceOps;
                folded.result |= cr.result;
            }
            wave.results.push_back(folded);
        }
    } else {
        // Serial-issue baseline: one request per round, every chunk
        // through execute() in isolation.
        Request &req = wave.requests.front();
        cc::CcExecResult folded = ctrl.execute(kServeCore, req.instr);
        for (const cc::CcInstruction &chunk : req.chunks) {
            cc::CcExecResult r = ctrl.execute(kServeCore, chunk);
            folded.latency += r.latency;
            folded.blockOps += r.blockOps;
            folded.inPlaceOps += r.inPlaceOps;
            folded.nearPlaceOps += r.nearPlaceOps;
            folded.result |= r.result;
        }
        wave.makespan = folded.latency;
        wave.results.push_back(folded);
    }

    waves_->inc();
    occupancy_->sample(static_cast<double>(wave.requests.size()));
    makespanHist_->sample(wave.makespan);

    EventTrace &trace = sys_.trace();
    if (trace.enabled()) {
        Json args = Json::object();
        args["requests"] = wave.requests.size();
        args["policy"] = toString(params_.policy);
        trace.complete(tracecat::kServe, "serve.wave",
                       EventTrace::kServeTrack, now, wave.makespan,
                       std::move(args));
    }
    return wave;
}

} // namespace ccache::serve
