#include "serve/chaos.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"

namespace ccache::serve {

namespace {

bool
parseKind(const std::string &text, ChaosKind *out)
{
    if (text == "crash") {
        *out = ChaosKind::Crash;
        return true;
    }
    if (text == "slow") {
        *out = ChaosKind::Slow;
        return true;
    }
    if (text == "partial") {
        *out = ChaosKind::Partial;
        return true;
    }
    return false;
}

bool
fail(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

/** Strict uint64 parse of a full token. */
bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end != text.c_str() + text.size())
        return false;
    *out = v;
    return true;
}

} // namespace

const char *
toString(ChaosKind kind)
{
    switch (kind) {
      case ChaosKind::Crash: return "crash";
      case ChaosKind::Slow: return "slow";
      case ChaosKind::Partial: return "partial";
    }
    return "unknown";
}

std::string
ChaosEvent::toSpec() const
{
    char buf[96];
    if (kind == ChaosKind::Crash) {
        std::snprintf(buf, sizeof buf, "%s@%llu+%llu:%u", toString(kind),
                      static_cast<unsigned long long>(start),
                      static_cast<unsigned long long>(duration), shard);
    } else {
        std::snprintf(buf, sizeof buf, "%s@%llu+%llu:%u*%g", toString(kind),
                      static_cast<unsigned long long>(start),
                      static_cast<unsigned long long>(duration), shard,
                      magnitude);
    }
    return buf;
}

Json
ChaosEvent::toJson() const
{
    Json e = Json::object();
    e["kind"] = toString(kind);
    e["shard"] = shard;
    e["start"] = start;
    e["duration"] = duration;
    if (kind != ChaosKind::Crash)
        e["magnitude"] = magnitude;
    return e;
}

bool
ChaosSchedule::parse(const std::string &spec, unsigned shards,
                     ChaosSchedule *out, std::string *err)
{
    ChaosSchedule sched;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t semi = spec.find(';', pos);
        std::string tok = spec.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        pos = semi == std::string::npos ? spec.size() : semi + 1;
        if (tok.empty())
            continue;

        std::size_t at = tok.find('@');
        std::size_t plus = tok.find('+', at == std::string::npos ? 0 : at);
        std::size_t colon =
            tok.find(':', plus == std::string::npos ? 0 : plus);
        if (at == std::string::npos || plus == std::string::npos ||
            colon == std::string::npos) {
            return fail(err, "chaos event '" + tok +
                                 "' is not kind@start+duration:shard");
        }

        ChaosEvent ev;
        if (!parseKind(tok.substr(0, at), &ev.kind))
            return fail(err, "unknown chaos kind in '" + tok + "'");
        if (!parseU64(tok.substr(at + 1, plus - at - 1), &ev.start))
            return fail(err, "bad start time in '" + tok + "'");
        if (!parseU64(tok.substr(plus + 1, colon - plus - 1), &ev.duration))
            return fail(err, "bad duration in '" + tok + "'");
        if (ev.duration == 0)
            return fail(err, "zero duration in '" + tok + "'");

        std::string rest = tok.substr(colon + 1);
        std::size_t star = rest.find('*');
        std::uint64_t shard = 0;
        if (!parseU64(rest.substr(0, star), &shard))
            return fail(err, "bad shard index in '" + tok + "'");
        if (shard >= shards)
            return fail(err, "shard " + std::to_string(shard) +
                                 " out of range in '" + tok + "'");
        ev.shard = static_cast<unsigned>(shard);
        if (star != std::string::npos) {
            const std::string mag = rest.substr(star + 1);
            char *end = nullptr;
            ev.magnitude = std::strtod(mag.c_str(), &end);
            if (mag.empty() || end != mag.c_str() + mag.size() ||
                ev.magnitude <= 0.0) {
                return fail(err, "bad magnitude in '" + tok + "'");
            }
        }
        sched.events.push_back(ev);
    }
    sched.canonicalize();
    *out = std::move(sched);
    return true;
}

std::string
ChaosSchedule::toSpec() const
{
    std::string out;
    for (const ChaosEvent &ev : events) {
        if (!out.empty())
            out += ';';
        out += ev.toSpec();
    }
    return out;
}

Json
ChaosSchedule::toJson() const
{
    Json arr = Json::array();
    for (const ChaosEvent &ev : events)
        arr.push(ev.toJson());
    return arr;
}

ChaosSchedule
ChaosSchedule::random(std::uint64_t seed, unsigned shards, Cycles horizon,
                      unsigned count)
{
    ChaosSchedule sched;
    if (shards < 2 || horizon == 0)
        return sched;
    Rng rng(mix64(seed ^ 0xc4a05ULL));
    for (unsigned i = 0; i < count; ++i) {
        ChaosEvent ev;
        switch (rng.below(3)) {
          case 0: ev.kind = ChaosKind::Crash; break;
          case 1: ev.kind = ChaosKind::Slow; break;
          default: ev.kind = ChaosKind::Partial; break;
        }
        ev.shard = 1 + static_cast<unsigned>(rng.below(shards - 1));
        ev.start = rng.below(horizon);
        // Windows span 5%..25% of the horizon.
        ev.duration = horizon / 20 + rng.below(horizon / 5 + 1);
        ev.magnitude = 2.0 + static_cast<double>(rng.below(7));
        sched.events.push_back(ev);
    }
    sched.canonicalize();
    return sched;
}

void
ChaosSchedule::canonicalize()
{
    std::sort(events.begin(), events.end(),
              [](const ChaosEvent &a, const ChaosEvent &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  if (a.shard != b.shard)
                      return a.shard < b.shard;
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
}

} // namespace ccache::serve
