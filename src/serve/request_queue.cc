#include "serve/request_queue.hh"

#include "common/logging.hh"

namespace ccache::serve {

namespace {
constexpr std::size_t kNumReasons = 3;
} // namespace

const char *
toString(RejectReason reason)
{
    switch (reason) {
      case RejectReason::QueueFull: return "queue_full";
      case RejectReason::TenantQueueFull: return "tenant_queue_full";
      case RejectReason::Malformed: return "malformed";
    }
    return "unknown";
}

RequestQueue::RequestQueue(const QueueParams &params,
                           const std::vector<TenantQos> &tenants,
                           StatGroup stats)
    : params_(params), qos_(tenants), pending_(tenants.size()),
      rejectCounts_(tenants.size(),
                    std::vector<std::uint64_t>(kNumReasons, 0)),
      stats_(stats)
{
    CC_ASSERT(!tenants.empty(), "request queue needs at least one tenant");
    for (const TenantQos &t : tenants) {
        StatGroup g = stats_.group(t.name);
        admittedCtr_.push_back(
            &g.counter("admitted", "requests accepted into the queue"));
        rejectedCtr_.push_back(
            &g.counter("rejected", "requests refused at admission"));
    }
}

std::optional<RejectReason>
RequestQueue::offer(const Request &req, Cycles now)
{
    (void)now;
    CC_ASSERT(req.tenant < pending_.size(), "unknown tenant");

    std::optional<RejectReason> reason;
    try {
        req.instr.validate();
        for (const cc::CcInstruction &c : req.chunks)
            c.validate();
    } catch (const FatalError &) {
        reason = RejectReason::Malformed;
    }
    if (!reason && size_ >= params_.capacity)
        reason = RejectReason::QueueFull;
    if (!reason && pending_[req.tenant].size() >= qos_[req.tenant].maxPending)
        reason = RejectReason::TenantQueueFull;

    if (reason) {
        ++rejectedTotal_;
        ++rejectCounts_[req.tenant][static_cast<std::size_t>(*reason)];
        rejectedCtr_[req.tenant]->inc();
        stats_.counter(std::string("rejected.") + toString(*reason)).inc();
        if (rejectSamples_.size() < params_.maxRejectSamples)
            rejectSamples_.push_back(
                {req.id, req.tenant, *reason, req.arrival});
        return reason;
    }

    pending_[req.tenant].push_back(req);
    ++size_;
    admittedCtr_[req.tenant]->inc();
    return std::nullopt;
}

Request
RequestQueue::pop(TenantId t)
{
    CC_ASSERT(t < pending_.size() && !pending_[t].empty(),
              "pop from empty tenant queue");
    Request req = std::move(pending_[t].front());
    pending_[t].pop_front();
    --size_;
    return req;
}

bool
RequestQueue::oldest(Cycles *arrival, TenantId *tenant) const
{
    bool found = false;
    for (TenantId t = 0; t < pending_.size(); ++t) {
        if (pending_[t].empty())
            continue;
        const Request &front = pending_[t].front();
        if (!found || front.arrival < *arrival ||
            (front.arrival == *arrival && t < *tenant)) {
            *arrival = front.arrival;
            *tenant = t;
            found = true;
        }
    }
    return found;
}

Json
RequestQueue::rejectionsJson() const
{
    Json doc = Json::object();
    doc["total"] = rejectedTotal_;
    Json by_tenant = Json::object();
    for (std::size_t t = 0; t < rejectCounts_.size(); ++t) {
        Json reasons = Json::object();
        bool any = false;
        for (std::size_t r = 0; r < kNumReasons; ++r) {
            if (rejectCounts_[t][r] == 0)
                continue;
            reasons[toString(static_cast<RejectReason>(r))] =
                rejectCounts_[t][r];
            any = true;
        }
        if (any)
            by_tenant[qos_[t].name] = std::move(reasons);
    }
    doc["by_tenant"] = std::move(by_tenant);
    Json samples = Json::array();
    for (const RejectSample &s : rejectSamples_) {
        Json e = Json::object();
        e["id"] = s.id;
        e["tenant"] = qos_[s.tenant].name;
        e["reason"] = toString(s.reason);
        e["arrival"] = s.arrival;
        samples.push(std::move(e));
    }
    doc["samples"] = std::move(samples);
    return doc;
}

} // namespace ccache::serve
