#include "serve/request_queue.hh"

#include "common/logging.hh"

namespace ccache::serve {

const char *
toString(RejectReason reason)
{
    switch (reason) {
      case RejectReason::QueueFull: return "queue_full";
      case RejectReason::TenantQueueFull: return "tenant_queue_full";
      case RejectReason::Malformed: return "malformed";
      case RejectReason::DeadlineExpired: return "deadline_expired";
      case RejectReason::BreakerOpen: return "breaker_open";
      case RejectReason::ShardDown: return "shard_down";
      case RejectReason::NoCapacity: return "no_capacity";
      case RejectReason::RetriesExhausted: return "retries_exhausted";
      case RejectReason::PartialResult: return "partial_result";
      case RejectReason::GlobalQueueFull: return "global_queue_full";
      case RejectReason::MigrationDrain: return "migration_drain";
    }
    return "unknown";
}

RequestQueue::RequestQueue(const QueueParams &params,
                           const std::vector<TenantQos> &tenants,
                           StatGroup stats)
    : params_(params), qos_(tenants), pending_(tenants.size()),
      shed_(tenants, stats, params.maxRejectSamples)
{
    CC_ASSERT(!tenants.empty(), "request queue needs at least one tenant");
    for (const TenantQos &t : tenants) {
        StatGroup g = stats.group(t.name);
        admittedCtr_.push_back(
            &g.counter("admitted", "requests accepted into the queue"));
    }
}

std::optional<RejectReason>
RequestQueue::offer(const Request &req, Cycles now)
{
    (void)now;
    CC_ASSERT(req.tenant < pending_.size(), "unknown tenant");

    std::optional<RejectReason> reason;
    try {
        req.instr.validate();
        for (const cc::CcInstruction &c : req.chunks)
            c.validate();
    } catch (const FatalError &) {
        reason = RejectReason::Malformed;
    }
    if (!reason && size_ >= params_.capacity)
        reason = RejectReason::QueueFull;
    if (!reason && pending_[req.tenant].size() >= qos_[req.tenant].maxPending)
        reason = RejectReason::TenantQueueFull;

    if (reason) {
        shed_.record(req.id, req.tenant, *reason, req.arrival);
        return reason;
    }

    pending_[req.tenant].push_back(req);
    ++size_;
    admittedCtr_[req.tenant]->inc();
    return std::nullopt;
}

Request
RequestQueue::pop(TenantId t)
{
    CC_ASSERT(t < pending_.size() && !pending_[t].empty(),
              "pop from empty tenant queue");
    Request req = std::move(pending_[t].front());
    pending_[t].pop_front();
    --size_;
    return req;
}

bool
RequestQueue::oldest(Cycles *arrival, TenantId *tenant) const
{
    bool found = false;
    for (TenantId t = 0; t < pending_.size(); ++t) {
        if (pending_[t].empty())
            continue;
        const Request &front = pending_[t].front();
        if (!found || front.arrival < *arrival ||
            (front.arrival == *arrival && t < *tenant)) {
            *arrival = front.arrival;
            *tenant = t;
            found = true;
        }
    }
    return found;
}

std::vector<Request>
RequestQueue::pruneIf(const std::function<bool(const Request &)> &pred)
{
    std::vector<Request> removed;
    for (std::deque<Request> &fifo : pending_) {
        for (auto it = fifo.begin(); it != fifo.end();) {
            if (pred(*it)) {
                removed.push_back(std::move(*it));
                it = fifo.erase(it);
                --size_;
            } else {
                ++it;
            }
        }
    }
    return removed;
}

std::optional<Request>
RequestQueue::removeById(RequestId id)
{
    for (std::deque<Request> &fifo : pending_) {
        for (auto it = fifo.begin(); it != fifo.end(); ++it) {
            if (it->id == id) {
                Request req = std::move(*it);
                fifo.erase(it);
                --size_;
                return req;
            }
        }
    }
    return std::nullopt;
}

std::optional<Request>
RequestQueue::removeYoungest(TenantId t)
{
    CC_ASSERT(t < pending_.size(), "unknown tenant");
    std::deque<Request> &fifo = pending_[t];
    if (fifo.empty())
        return std::nullopt;
    Request req = std::move(fifo.back());
    fifo.pop_back();
    --size_;
    return req;
}

} // namespace ccache::serve
