/**
 * @file
 * Deterministic chaos harness for the sharded serving layer
 * (DESIGN.md §12).
 *
 * A ChaosSchedule is a fixed list of shard-level failure windows in
 * simulated time, applied by the ShardRouter's event loop at exact
 * cycle boundaries — no host randomness, no wall clocks, so a chaos
 * run is byte-identical at any thread count (§8). Three fault shapes:
 *
 *  - crash:   the shard goes dark for the window. In-flight work
 *             fails, queued work reroutes or sheds (ShardDown), and
 *             the shard rejoins (cold) when the window ends.
 *  - slow:    a sensing-margin storm — the shard's FaultInjector rates
 *             are raised (marginFailPerDualRowOp scaled by magnitude)
 *             so every dual-row op risks the detect-and-retry ladder.
 *             The shard stays correct but its latency balloons; this
 *             is the shape that exercises timeouts and hedging.
 *  - partial: partial sub-array loss — stuck-at defects appear under
 *             a fraction of the shard (stuckAtPerBlock and the weak
 *             sub-array fraction scaled by magnitude). Correctable
 *             through the controller's remap ladder, at a latency and
 *             energy cost.
 *
 * The spec grammar (tools/cc_server --chaos, bench/serve_failover):
 *
 *     event   := kind '@' start '+' duration ':' shard [ '*' magnitude ]
 *     spec    := event ( ';' event )*
 *
 * e.g. "crash@200000+150000:1;slow@100000+400000:2*8". random() draws
 * a schedule from a seed via the shared deriveSeed discipline, for
 * sweeps that want varied-but-reproducible fault patterns.
 */

#ifndef CCACHE_SERVE_CHAOS_HH
#define CCACHE_SERVE_CHAOS_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace ccache::serve {

/** Shard-level failure shapes. */
enum class ChaosKind {
    Crash,    ///< shard dark for the window
    Slow,     ///< margin-fail storm: correct but slow
    Partial,  ///< stuck-at storm: partial sub-array loss, remappable
};

const char *toString(ChaosKind kind);

/** One failure window on one shard. */
struct ChaosEvent
{
    ChaosKind kind = ChaosKind::Crash;
    unsigned shard = 0;
    Cycles start = 0;
    Cycles duration = 0;

    /** Fault-rate scale for slow/partial windows (ignored by crash). */
    double magnitude = 4.0;

    Cycles end() const { return start + duration; }

    /** Round-trippable "kind@start+duration:shard[*magnitude]". */
    std::string toSpec() const;

    Json toJson() const;
};

/** A full schedule: events sorted by (start, shard, kind). */
struct ChaosSchedule
{
    std::vector<ChaosEvent> events;

    bool empty() const { return events.empty(); }

    /**
     * Parse the spec grammar above. Returns false (with a diagnostic
     * in @p err, when non-null) on malformed input, an out-of-range
     * shard (>= @p shards), a zero duration or a bad magnitude.
     * Events are sorted on success.
     */
    static bool parse(const std::string &spec, unsigned shards,
                      ChaosSchedule *out, std::string *err = nullptr);

    /** Semicolon-joined round trip of every event. */
    std::string toSpec() const;

    Json toJson() const;

    /**
     * Draw @p count events over @p horizon cycles across @p shards
     * from @p seed — a pure function of its arguments (deriveSeed
     * discipline), so sweep points regenerate identical schedules at
     * any thread count. Never crashes shard 0, so a single-tenant
     * fleet always keeps one live home candidate.
     */
    static ChaosSchedule random(std::uint64_t seed, unsigned shards,
                                Cycles horizon, unsigned count);

    /** Sort into canonical (start, shard, kind) order. */
    void canonicalize();
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_CHAOS_HH
