/**
 * @file
 * Bounded multi-tenant request queue with admission control
 * (DESIGN.md §11).
 *
 * One FIFO per tenant under a global capacity bound. offer() is the
 * single admission point: it enforces the global bound (backpressure
 * toward the client) and the per-tenant pending cap (isolation between
 * tenants), and records every rejection in the embedded ShedLog —
 * per-(tenant, reason) stats counters plus a bounded sample list
 * exported as JSON — so shed load is first-class output, never a
 * silent drop. The reliability pipeline (DESIGN.md §12) records its
 * own sheds (deadlines, breaker brownout, heap exhaustion) through
 * recordShed() so one structured report covers the whole queue.
 */

#ifndef CCACHE_SERVE_REQUEST_QUEUE_HH
#define CCACHE_SERVE_REQUEST_QUEUE_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"
#include "serve/shed_log.hh"

namespace ccache::serve {

/** Queue sizing. */
struct QueueParams
{
    /** Global pending-request capacity across all tenants. */
    std::size_t capacity = 256;

    /** Rejection samples kept for the JSON export (counters are always
     *  complete; samples give the first few concrete victims). */
    std::size_t maxRejectSamples = 32;
};

class RequestQueue
{
  public:
    RequestQueue(const QueueParams &params,
                 const std::vector<TenantQos> &tenants, StatGroup stats);

    /**
     * Admit @p req at time @p now, or reject with a reason. On
     * rejection the request is NOT stored; the caller still owns its
     * buffers and must recycle them.
     */
    std::optional<RejectReason> offer(const Request &req, Cycles now);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t tenantCount() const { return pending_.size(); }

    /** The tenant's FIFO of pending requests (front = oldest). */
    const std::deque<Request> &pending(TenantId t) const
    {
        return pending_[t];
    }

    /** Pop the oldest pending request of tenant @p t. */
    Request pop(TenantId t);

    /** Arrival time of the oldest pending request across all tenants
     *  (and that tenant's id via @p tenant); false when empty. */
    bool oldest(Cycles *arrival, TenantId *tenant) const;

    /**
     * Remove and return every pending request matching @p pred, walking
     * tenants in index order and each FIFO front-to-back (deterministic
     * order). The caller owns the removed requests' buffers; removal
     * records nothing — pair with recordShed() when the removal is a
     * shed (deadline expiry) rather than a transfer (hedge cancel).
     */
    std::vector<Request> pruneIf(
        const std::function<bool(const Request &)> &pred);

    /** Remove the pending request with id @p id, if present; the
     *  removed request is returned for buffer recycling. */
    std::optional<Request> removeById(RequestId id);

    /** Remove tenant @p t's youngest pending request (FIFO back), if
     *  any — the global-backpressure eviction victim (DESIGN.md §15):
     *  evicting the most recent admission wastes the least sunk queue
     *  time. Removal records nothing; pair with recordShed(). */
    std::optional<Request> removeYoungest(TenantId t);

    /** Record a shed that happened outside offer() — deadline expiry,
     *  breaker brownout, heap exhaustion, retry exhaustion. */
    void recordShed(RequestId id, TenantId tenant, RejectReason reason,
                    Cycles arrival)
    {
        shed_.record(id, tenant, reason, arrival);
    }

    /** Total recorded sheds (admission + external, all reasons). */
    std::uint64_t rejected() const { return shed_.total(); }

    /** Sheds of @p tenant for @p reason (ShedLog::count). */
    std::uint64_t rejectedFor(TenantId tenant, RejectReason reason) const
    {
        return shed_.count(tenant, reason);
    }

    /** Structured shed-load report (ShedLog::toJson). */
    Json rejectionsJson() const { return shed_.toJson(); }

  private:
    QueueParams params_;
    std::vector<TenantQos> qos_;
    std::vector<std::deque<Request>> pending_;
    std::size_t size_ = 0;

    ShedLog shed_;
    std::vector<StatCounter *> admittedCtr_;
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_REQUEST_QUEUE_HH
