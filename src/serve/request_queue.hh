/**
 * @file
 * Bounded multi-tenant request queue with admission control
 * (DESIGN.md §11).
 *
 * One FIFO per tenant under a global capacity bound. offer() is the
 * single admission point: it enforces the global bound (backpressure
 * toward the client) and the per-tenant pending cap (isolation between
 * tenants), and records every rejection as a structured entry — stats
 * counters per (tenant, reason) plus a bounded sample list exported as
 * JSON — so shed load is first-class output, never a silent drop.
 */

#ifndef CCACHE_SERVE_REQUEST_QUEUE_HH
#define CCACHE_SERVE_REQUEST_QUEUE_HH

#include <deque>
#include <optional>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "serve/request.hh"

namespace ccache::serve {

/** Queue sizing. */
struct QueueParams
{
    /** Global pending-request capacity across all tenants. */
    std::size_t capacity = 256;

    /** Rejection samples kept for the JSON export (counters are always
     *  complete; samples give the first few concrete victims). */
    std::size_t maxRejectSamples = 32;
};

class RequestQueue
{
  public:
    RequestQueue(const QueueParams &params,
                 const std::vector<TenantQos> &tenants, StatGroup stats);

    /**
     * Admit @p req at time @p now, or reject with a reason. On
     * rejection the request is NOT stored; the caller still owns its
     * buffers and must recycle them.
     */
    std::optional<RejectReason> offer(const Request &req, Cycles now);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t tenantCount() const { return pending_.size(); }

    /** The tenant's FIFO of pending requests (front = oldest). */
    const std::deque<Request> &pending(TenantId t) const
    {
        return pending_[t];
    }

    /** Pop the oldest pending request of tenant @p t. */
    Request pop(TenantId t);

    /** Arrival time of the oldest pending request across all tenants
     *  (and that tenant's id via @p tenant); false when empty. */
    bool oldest(Cycles *arrival, TenantId *tenant) const;

    /** Total rejections so far (all tenants, all reasons). */
    std::uint64_t rejected() const { return rejectedTotal_; }

    /**
     * Structured shed-load report:
     *
     *     { "total": N,
     *       "by_tenant": { "<tenant>": { "<reason>": count, ... } },
     *       "samples": [ { "id", "tenant", "reason", "arrival" }, ... ] }
     */
    Json rejectionsJson() const;

  private:
    QueueParams params_;
    std::vector<TenantQos> qos_;
    std::vector<std::deque<Request>> pending_;
    std::size_t size_ = 0;

    struct RejectSample
    {
        RequestId id;
        TenantId tenant;
        RejectReason reason;
        Cycles arrival;
    };

    std::uint64_t rejectedTotal_ = 0;
    /** [tenant][reason] -> count (dense; reasons are a small enum). */
    std::vector<std::vector<std::uint64_t>> rejectCounts_;
    std::vector<RejectSample> rejectSamples_;

    StatGroup stats_;
    std::vector<StatCounter *> admittedCtr_;
    std::vector<StatCounter *> rejectedCtr_;
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_REQUEST_QUEUE_HH
