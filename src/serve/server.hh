/**
 * @file
 * CcServer: the multi-tenant request-serving front end (DESIGN.md §11).
 *
 * Layered on top of sim::System, the server replays an open-loop
 * request stream in simulated time: arrivals are admitted through the
 * bounded RequestQueue (rejections become structured shed-load
 * records), operand buffers are placed by a LocalityAllocator so each
 * request's operands are page-offset co-located (recycled at
 * completion — the allocator free-list churns at request rate), and
 * the BatchScheduler drains the queue in sub-array-parallel waves.
 *
 * Latency accounting is per tenant, in log-bucketed histograms wired
 * into the stats registry (and therefore into every JSON stats
 * export): queueing latency (admission -> dispatch), service latency
 * (dispatch -> completion) and total sojourn. The whole run is a pure
 * function of (SystemConfig, ServerParams, request specs): simulated
 * time only, no host clocks, no thread-dependent state (§8).
 */

#ifndef CCACHE_SERVE_SERVER_HH
#define CCACHE_SERVE_SERVER_HH

#include <memory>
#include <string>
#include <vector>

#include "geometry/locality_allocator.hh"
#include "serve/batch_scheduler.hh"
#include "serve/request_builder.hh"
#include "serve/request_queue.hh"
#include "sim/system.hh"
#include "workload/traffic_gen.hh"

namespace ccache::serve {

/** Server assembly configuration. */
struct ServerParams
{
    QueueParams queue;
    SchedulerParams sched;
    std::vector<TenantQos> tenants = {TenantQos{}};

    /** Operand heap managed by the LocalityAllocator. @{ */
    Addr heapBase = 0x40000000;
    std::size_t heapBytes = 64 << 20;
    /** @} */

    /** Pre-warm operand buffers into L3 at admission (service latency
     *  then measures compute + on-chip traffic, not DRAM fills). */
    bool warmL3 = true;

    /** Rotating locality groups for request placement (bounds the
     *  allocator's group table while keeping co-location). */
    unsigned allocGroups = 32;
};

/** End-of-run summary (also exported as JSON). */
struct ServeReport
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    Cycles elapsed = 0;

    /** Served requests per million cycles. */
    double throughputRpmc = 0.0;

    struct TenantSummary
    {
        std::string name;
        std::uint64_t admitted = 0;
        std::uint64_t served = 0;
        std::uint64_t rejected = 0;
        std::uint64_t p50QueueCycles = 0;
        std::uint64_t p99QueueCycles = 0;
        std::uint64_t p999QueueCycles = 0;
        std::uint64_t p50ServiceCycles = 0;
        std::uint64_t p99ServiceCycles = 0;
        double meanSojournCycles = 0.0;
    };

    std::vector<TenantSummary> tenants;

    /** Structured shed-load record (RequestQueue::rejectionsJson). */
    Json rejections;

    Json toJson() const;
};

class CcServer
{
  public:
    CcServer(sim::System &sys, const ServerParams &params);

    /** Replay @p specs (sorted by arrival) to completion. */
    ServeReport run(const std::vector<workload::RequestSpec> &specs);

    RequestQueue &queue() { return *queue_; }
    BatchScheduler &scheduler() { return *sched_; }
    geometry::LocalityAllocator &allocator() { return *alloc_; }

  private:
    sim::System &sys_;
    ServerParams params_;
    std::unique_ptr<geometry::LocalityAllocator> alloc_;
    std::unique_ptr<RequestQueue> queue_;
    std::unique_ptr<BatchScheduler> sched_;

    struct TenantStats
    {
        StatCounter *served;
        StatLogHistogram *queueCycles;
        StatLogHistogram *serviceCycles;
        StatLogHistogram *sojournCycles;
    };

    std::vector<TenantStats> tenantStats_;
    RequestId nextId_ = 0;
};

} // namespace ccache::serve

#endif // CCACHE_SERVE_SERVER_HH
