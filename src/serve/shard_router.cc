#include "serve/shard_router.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::serve {

namespace {

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

} // namespace

Json
FleetReport::toJson() const
{
    Json doc = Json::object();
    doc["offered"] = offered;
    doc["served"] = served;
    doc["shed"] = shed;
    doc["availability"] = availability;
    doc["retries"] = retries;
    doc["reroutes"] = reroutes;
    doc["hedges_launched"] = hedgesLaunched;
    doc["hedge_wins"] = hedgeWins;
    doc["hedge_cancelled"] = hedgeCancelled;
    doc["hedge_wasted"] = hedgeWasted;
    doc["breaker_trips"] = breakerTrips;
    doc["golden_checked"] = goldenChecked;
    doc["golden_mismatch"] = goldenMismatch;
    doc["elapsed_cycles"] = elapsed;
    doc["fanout_parents"] = fanoutParents;
    doc["fanout_legs"] = fanoutLegs;
    doc["fanout_partial"] = fanoutPartial;
    doc["fanout_discarded"] = fanoutDiscarded;
    doc["migrations"] = migrations;
    doc["migration_dual_dispatch"] = migrationDualDispatch;
    doc["migration_transplants"] = migrationTransplants;
    doc["global_evictions"] = globalEvictions;
    doc["global_sheds"] = globalSheds;

    Json ph = Json::array();
    for (const PhaseSummary &p : phases) {
        Json e = Json::object();
        e["start"] = p.start;
        e["end"] = p.end;
        e["offered"] = p.offered;
        e["served"] = p.served;
        e["shed"] = p.shed;
        e["availability"] = p.availability;
        ph.push(std::move(e));
    }
    doc["phases"] = std::move(ph);

    Json sh = Json::array();
    for (const ShardSummary &s : shards) {
        Json e = Json::object();
        e["index"] = s.index;
        e["served"] = s.served;
        e["failed"] = s.failed;
        e["waves"] = s.waves;
        e["down_cycles"] = s.downCycles;
        e["breaker_trips"] = s.breakerTrips;
        e["p50_service_cycles"] = s.p50ServiceCycles;
        e["p99_service_cycles"] = s.p99ServiceCycles;
        sh.push(std::move(e));
    }
    doc["shards"] = std::move(sh);

    Json tens = Json::object();
    for (const TenantSummary &t : tenants) {
        Json e = Json::object();
        e["served"] = t.served;
        e["shed"] = t.shed;
        e["p50_sojourn_cycles"] = t.p50SojournCycles;
        e["p99_sojourn_cycles"] = t.p99SojournCycles;
        e["p999_sojourn_cycles"] = t.p999SojournCycles;
        tens[t.name] = std::move(e);
    }
    doc["tenants"] = std::move(tens);
    doc["rejections"] = rejections;
    doc["chaos"] = chaos;
    return doc;
}

ShardRouter::ShardRouter(const sim::SystemConfig &sys_config,
                         const ServerParams &serve_params,
                         const RouterParams &router_params)
    : serve_(serve_params), params_(router_params),
      backoff_(router_params.retry)
{
    CC_ASSERT(params_.shards >= 1, "router needs at least one shard");
    CC_ASSERT(params_.vnodesPerShard >= 1, "ring needs vnodes");
    CC_ASSERT(!serve_.tenants.empty(), "router needs at least one tenant");
    std::set<std::string> names;
    for (const TenantQos &t : serve_.tenants)
        CC_ASSERT(names.insert(t.name).second,
                  "tenant names must be unique: ", t.name);

    StatGroup fleet = fleetStats_.group("fleet");
    fleetShed_ = std::make_unique<ShedLog>(serve_.tenants,
                                           fleet.group("sheds"));
    fleetSojourn_ = &fleet.logHistogram(
        "sojourn_cycles", "offered arrival -> commit, fleet-wide");
    for (const TenantQos &t : serve_.tenants) {
        StatGroup g = fleet.group(t.name);
        tenantServed_.push_back(&g.counter("served", "commits"));
        tenantSojourn_.push_back(&g.logHistogram(
            "sojourn_cycles", "offered arrival -> commit"));
    }

    for (unsigned s = 0; s < params_.shards; ++s) {
        Shard sh;
        sh.sys = std::make_unique<sim::System>(sys_config);
        sh.alloc = std::make_unique<geometry::LocalityAllocator>(
            serve_.heapBase, serve_.heapBytes);
        StatGroup g = sh.sys->stats().group("serve");
        sh.queue = std::make_unique<RequestQueue>(serve_.queue,
                                                  serve_.tenants, g);
        sh.sched = std::make_unique<BatchScheduler>(
            *sh.sys, *sh.queue, serve_.tenants, serve_.sched, g);
        sh.breaker = CircuitBreaker(params_.breaker);
        sh.baseFaults = sh.sys->cc().mutableFaultInjector().params();

        StatGroup sg = fleetStats_.group("shard." + std::to_string(s));
        sh.servedCtr = &sg.counter("served", "requests committed here");
        sh.failedCtr = &sg.counter("failed",
                                   "requests failed here (crash/timeout)");
        sh.wavesCtr = &sg.counter("waves", "waves dispatched");
        sh.downCyclesCtr = &sg.counter("down_cycles",
                                       "simulated cycles spent crashed");
        sh.serviceHist = &sg.logHistogram("service_cycles",
                                          "per-request service latency");
        shards_.push_back(std::move(sh));
    }

    // Consistent-hash ring: vnodesPerShard points per shard, sorted.
    for (unsigned s = 0; s < params_.shards; ++s) {
        for (unsigned v = 0; v < params_.vnodesPerShard; ++v) {
            std::uint64_t point = mix64(
                mix64(params_.ringSeed ^ (s + 1)) ^
                (0x9e3779b97f4a7c15ULL * (v + 1)));
            ring_.emplace_back(point, s);
        }
    }
    std::sort(ring_.begin(), ring_.end());

    // Per-tenant failover order: distinct shards met on the clockwise
    // successor walk from the tenant's hash point (home first).
    for (const TenantQos &t : serve_.tenants) {
        std::uint64_t key = deriveSeed(params_.ringSeed, t.name);
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(key, 0u),
            [](const auto &a, const auto &b) { return a.first < b.first; });
        std::vector<unsigned> order;
        std::vector<bool> seen(params_.shards, false);
        for (std::size_t i = 0;
             i < ring_.size() && order.size() < params_.shards; ++i) {
            if (it == ring_.end())
                it = ring_.begin();
            if (!seen[it->second]) {
                seen[it->second] = true;
                order.push_back(it->second);
            }
            ++it;
        }
        order_.push_back(std::move(order));
    }

    ewma_.assign(params_.shards, 0.0);
}

ShardRouter::~ShardRouter() = default;

bool
ShardRouter::hiQos(TenantId t) const
{
    return serve_.tenants[t].weight >= params_.brownoutWeightFloor;
}

void
ShardRouter::note(Cycles now, const std::string &what)
{
    if (params_.recordEvents)
        events_.push_back("t=" + std::to_string(now) + " " + what);
}

std::optional<unsigned>
ShardRouter::routeShard(TenantId t, Cycles now, int avoid,
                        RejectReason *why, std::size_t startOffset,
                        bool fullSpan) const
{
    const std::vector<unsigned> &ord = order_[t];
    // Brownout policy: low-QoS tenants only ever use their home shard;
    // when it is dark they shed, so rerouted capacity goes to high-QoS
    // tenants first. Fan-out legs span the whole order regardless of
    // QoS — a multi-shard request is multi-shard by construction.
    const std::size_t span = (fullSpan || hiQos(t)) ? ord.size() : 1;
    bool saw_breaker = false;
    for (std::size_t i = 0; i < span; ++i) {
        unsigned s = ord[(startOffset + i) % ord.size()];
        if (static_cast<int>(s) == avoid)
            continue;
        const Shard &sh = shards_[s];
        if (!sh.up)
            continue;
        if (!sh.breaker.allowDispatch(now)) {
            saw_breaker = true;
            continue;
        }
        return s;
    }
    if (why) {
        *why = saw_breaker ? RejectReason::BreakerOpen
                           : RejectReason::ShardDown;
    }
    return std::nullopt;
}

bool
ShardRouter::placeCopy(Track &tr, unsigned s, Cycles now, bool hedge)
{
    Shard &sh = shards_[s];
    if (!hedge) {
        ++tr.attempts;
        tr.primaryShard = s;
    }

    RequestBuildParams build;
    build.warmL3 = serve_.warmL3;
    build.allocGroups = serve_.allocGroups;
    build.fillPattern = params_.verifyGolden;
    // Fold the Zipf content key into the operand pattern: hot keys
    // carry hot data, and the golden check (which re-reads the placed
    // bytes) keeps working wherever the request is re-placed.
    build.patternSeed = tr.spec.key != 0
        ? mix64(params_.patternSeed ^ mix64(tr.spec.key))
        : params_.patternSeed;

    RejectReason why = RejectReason::NoCapacity;
    std::optional<Request> req =
        buildRequest(*sh.sys, *sh.alloc, build, tr.spec, tr.id, &why);
    if (!req) {
        if (!hedge)
            failCopy(tr, now, static_cast<int>(s), why);
        return false;
    }
    if (std::optional<RejectReason> reason = sh.queue->offer(*req, now)) {
        recycleRequest(*sh.alloc, *req);
        if (!hedge)
            failCopy(tr, now, static_cast<int>(s), *reason);
        return false;
    }
    ++tr.inFlight;
    return true;
}

void
ShardRouter::failCopy(Track &tr, Cycles now, int shard, RejectReason reason)
{
    if (tr.done)
        return;
    if (tr.inFlight > 0)
        return;   // a sibling copy is still alive; let it decide
    if (tr.attempts >= params_.retry.maxAttempts) {
        // Deadline and drain-window sheds keep their reason: a rebuilt
        // copy would fail the same policy again.
        bool terminal = reason == RejectReason::DeadlineExpired ||
                        reason == RejectReason::MigrationDrain;
        shedTrack(tr, now,
                  terminal ? reason : RejectReason::RetriesExhausted);
        return;
    }
    Cycles delay = backoff_.delay(tr.id, tr.attempts);
    retries_.push(Timer{now + delay, tr.id, shard});
    ++report_.retries;
    note(now, "retry id=" + std::to_string(tr.id) + " attempt=" +
                  std::to_string(tr.attempts) + " after=" +
                  std::to_string(delay) + " avoid=" +
                  std::to_string(shard));
}

void
ShardRouter::shedTrack(Track &tr, Cycles now, RejectReason reason)
{
    if (tr.done)
        return;
    tr.done = true;
    if (tr.parent != kNoParent) {
        // A leg's terminal failure rolls up to the fan-in barrier; the
        // parent's partial_result record is the structured shed.
        note(now, "leg shed id=" + std::to_string(tr.id) + " reason=" +
                      toString(reason));
        legFailed(tr.parent, now, reason);
        return;
    }
    ++report_.shed;
    notePhaseShed(tr.spec.arrival);
    fleetShed_->record(tr.id, tr.spec.tenant, reason, tr.spec.arrival);
    note(now, "shed id=" + std::to_string(tr.id) + " reason=" +
                  toString(reason));
}

unsigned
ShardRouter::cancelQueuedCopies(RequestId id)
{
    unsigned removed = 0;
    for (unsigned o = 0; o < shards_.size(); ++o) {
        if (std::optional<Request> twin =
                shards_[o].queue->removeById(id)) {
            recycleRequest(*shards_[o].alloc, *twin);
            ++removed;
        }
    }
    return removed;
}

void
ShardRouter::commitCopy(Track &tr, unsigned s, const Request &req,
                        const cc::CcExecResult &result, Cycles now)
{
    Shard &sh = shards_[s];
    if (params_.verifyGolden) {
        ++report_.goldenChecked;
        if (!goldenVerifyRequest(*sh.sys, req, result.result)) {
            ++report_.goldenMismatch;
            note(now, "GOLDEN MISMATCH id=" + std::to_string(tr.id));
        }
    }
    recycleRequest(*sh.alloc, req);

    tr.done = true;
    sh.servedCtr->inc();
    sh.serviceHist->sample(result.latency);
    if (tr.hedged && s != tr.primaryShard)
        ++report_.hedgeWins;
    note(now, "commit id=" + std::to_string(tr.id) + " shard=" +
                  std::to_string(s));

    // First commit wins: cancel any still-queued sibling copy. An
    // executing sibling is discarded (hedge_wasted) at its completion.
    if (tr.inFlight > 0) {
        unsigned cancelled = cancelQueuedCopies(tr.id);
        tr.inFlight -= cancelled;
        report_.hedgeCancelled += cancelled;
    }

    if (tr.parent != kNoParent) {
        // A leg's commit advances the fan-in barrier; fleet-level
        // served/sojourn accounting happens once, at the parent.
        legCommitted(tr.parent, now);
        return;
    }

    ++report_.served;
    notePhaseServed(tr.spec.arrival);
    Cycles sojourn = now > tr.spec.arrival ? now - tr.spec.arrival : 0;
    fleetSojourn_->sample(sojourn);
    tenantServed_[tr.spec.tenant]->inc();
    tenantSojourn_[tr.spec.tenant]->sample(sojourn);
}

void
ShardRouter::spawnFanout(Track &parent, Cycles now)
{
    const workload::RequestSpec &spec = parent.spec;
    unsigned legs = std::min<unsigned>(spec.fanout, shardCount());
    Fanout &fan = fanouts_.emplace(parent.id, Fanout{}).first->second;
    fan.legs = legs;
    ++report_.fanoutParents;
    note(now, "fanout id=" + std::to_string(parent.id) + " legs=" +
                  std::to_string(legs));

    // Split the payload evenly (rounded up to whole blocks); vary the
    // content key per leg so each leg carries its own slice of data.
    std::size_t per = (spec.bytes + legs - 1) / legs;
    per = std::max<std::size_t>(
        kBlockSize, (per + kBlockSize - 1) / kBlockSize * kBlockSize);

    for (unsigned l = 0; l < legs; ++l) {
        if (parent.done)
            break;   // an earlier leg already degraded the barrier
        RequestId lid = nextId_++;
        workload::RequestSpec ls = spec;
        ls.fanout = 1;
        ls.bytes = per;
        if (spec.key != 0) {
            std::uint64_t k = mix64(spec.key ^ (l + 1));
            ls.key = k != 0 ? k : 1;
        }
        Track &leg =
            tracks_
                .emplace(lid, Track{ls, lid, 0, 0, 0, false, false,
                                    parent.id})
                .first->second;
        fanouts_.at(parent.id).legIds.push_back(lid);
        ++report_.fanoutLegs;

        RejectReason why = RejectReason::ShardDown;
        std::optional<unsigned> s =
            routeShard(spec.tenant, now, -1, &why, l, true);
        if (!s) {
            shedTrack(leg, now, why);
            continue;
        }
        if (!admitGlobal(leg, now))
            continue;
        if (placeCopy(leg, *s, now, false) && params_.hedgeAge != 0 &&
            hiQos(spec.tenant)) {
            hedges_.push(Timer{now + params_.hedgeAge, lid, -1});
        }
    }
}

void
ShardRouter::legCommitted(RequestId parentId, Cycles now)
{
    Fanout &fan = fanouts_.at(parentId);
    Track &parent = tracks_.at(parentId);
    if (parent.done)
        return;   // barrier already resolved (defensive)
    ++fan.committed;
    if (fan.committed < fan.legs)
        return;

    // Fan-in: every leg committed (and golden-verified when enabled);
    // the parent serves with sojourn measured to the last leg.
    parent.done = true;
    ++report_.served;
    notePhaseServed(parent.spec.arrival);
    Cycles sojourn =
        now > parent.spec.arrival ? now - parent.spec.arrival : 0;
    fleetSojourn_->sample(sojourn);
    tenantServed_[parent.spec.tenant]->inc();
    tenantSojourn_[parent.spec.tenant]->sample(sojourn);
    note(now, "fanin commit id=" + std::to_string(parentId));
}

void
ShardRouter::legFailed(RequestId parentId, Cycles now, RejectReason why)
{
    Track &parent = tracks_.at(parentId);
    if (parent.done)
        return;
    ++report_.fanoutPartial;
    note(now, "fanout partial id=" + std::to_string(parentId) +
                  " leg_reason=" + toString(why));
    shedTrack(parent, now, RejectReason::PartialResult);

    // The barrier is dead: cancel the surviving legs' queued copies;
    // executing copies are discarded at their wave completion.
    for (RequestId lid : fanouts_.at(parentId).legIds) {
        Track &leg = tracks_.at(lid);
        if (leg.done)
            continue;
        leg.done = true;
        unsigned cancelled = cancelQueuedCopies(lid);
        leg.inFlight -= cancelled;
        report_.fanoutDiscarded += cancelled;
    }
}

void
ShardRouter::rebalanceTick(Cycles now)
{
    // EWMA of instantaneous load: queued requests plus the executing
    // wave's occupancy.
    for (unsigned s = 0; s < shards_.size(); ++s) {
        const Shard &sh = shards_[s];
        double load = static_cast<double>(sh.queue->size());
        if (sh.busy)
            load += static_cast<double>(sh.wave.requests.size());
        ewma_[s] = params_.ewmaAlpha * load +
                   (1.0 - params_.ewmaAlpha) * ewma_[s];
    }
    if (migration_.active || now < cooldownUntil_)
        return;

    int hot = -1;
    int cold = -1;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        if (!shards_[s].up)
            continue;
        if (hot < 0 || ewma_[s] > ewma_[hot])
            hot = static_cast<int>(s);
        if (cold < 0 || ewma_[s] < ewma_[cold])
            cold = static_cast<int>(s);
    }
    if (hot < 0 || cold < 0 || hot == cold)
        return;
    if (ewma_[hot] < params_.hotspotMinLoad)
        return;
    if (ewma_[hot] < params_.hotspotRatio * (ewma_[cold] + 1.0))
        return;
    // p99 guard: only rebalance toward a shard that is actually
    // serving no worse than the congested one.
    if (shards_[hot].serviceHist->quantile(0.99) <
        shards_[cold].serviceHist->quantile(0.99)) {
        return;
    }

    // Hottest tenant homed on the hot shard: most pending work there,
    // ties to the lowest tenant id.
    int tenant = -1;
    std::size_t best = 0;
    for (TenantId t = 0; t < serve_.tenants.size(); ++t) {
        if (order_[t][0] != static_cast<unsigned>(hot))
            continue;
        std::size_t pend = shards_[hot].queue->pending(t).size();
        if (pend > best) {
            best = pend;
            tenant = static_cast<int>(t);
        }
    }
    if (tenant < 0)
        return;
    startMigration(static_cast<TenantId>(tenant),
                   static_cast<unsigned>(hot),
                   static_cast<unsigned>(cold), now);
}

void
ShardRouter::startMigration(TenantId t, unsigned from, unsigned to,
                            Cycles now)
{
    migration_ = Migration{true, t, from, to,
                           now + params_.migrationDrain};
    ++report_.migrations;

    // Re-home instantly: the target becomes the head of the failover
    // order (new arrivals route there); the old home is the first
    // fallback, so crash failover still works mid-handoff.
    std::vector<unsigned> &ord = order_[t];
    ord.erase(std::remove(ord.begin(), ord.end(), to), ord.end());
    ord.insert(ord.begin(), to);

    note(now, "migrate tenant=" + serve_.tenants[t].name + " from=" +
                  std::to_string(from) + " to=" + std::to_string(to) +
                  " drain_until=" +
                  std::to_string(migration_.drainUntil));
}

void
ShardRouter::finishMigration(Cycles now)
{
    Migration mig = migration_;
    migration_.active = false;
    cooldownUntil_ = now + params_.migrationCooldown;

    // Transplant leftovers: queued requests of the migrated tenant
    // still on the source rebuild on the target. A refused transplant
    // goes through the retry pipeline carrying migration_drain, so it
    // only sheds (with that reason) once its budget is spent.
    Shard &src = shards_[mig.from];
    std::vector<Request> left = src.queue->pruneIf(
        [&](const Request &r) { return r.tenant == mig.tenant; });
    for (const Request &req : left) {
        recycleRequest(*src.alloc, req);
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;
        if (tr.done) {
            ++report_.hedgeCancelled;   // stale dual-dispatch twin
            continue;
        }
        if (shards_[mig.to].up && placeCopy(tr, mig.to, now, true)) {
            tr.primaryShard = mig.to;
            ++report_.migrationTransplants;
        } else {
            failCopy(tr, now, static_cast<int>(mig.from),
                     RejectReason::MigrationDrain);
        }
    }
    note(now, "migration drained tenant=" +
                  serve_.tenants[mig.tenant].name + " transplants=" +
                  std::to_string(left.size()));
}

std::size_t
ShardRouter::totalQueued() const
{
    std::size_t total = 0;
    for (const Shard &sh : shards_)
        total += sh.queue->size();
    return total;
}

bool
ShardRouter::admitGlobal(Track &tr, Cycles now)
{
    if (params_.globalQueueCap == 0 ||
        totalQueued() < params_.globalQueueCap) {
        return true;
    }

    // Over budget: the fleet sheds its lowest-QoS queued work first.
    // Victim tenant = strictly lower weight than the arrival, lowest
    // weight first, ties to the lowest tenant id.
    unsigned myWeight = serve_.tenants[tr.spec.tenant].weight;
    int victim = -1;
    for (TenantId t = 0; t < serve_.tenants.size(); ++t) {
        if (serve_.tenants[t].weight >= myWeight)
            continue;
        bool queued = false;
        for (const Shard &sh : shards_) {
            if (!sh.queue->pending(t).empty()) {
                queued = true;
                break;
            }
        }
        if (!queued)
            continue;
        if (victim < 0 ||
            serve_.tenants[t].weight <
                serve_.tenants[static_cast<TenantId>(victim)].weight) {
            victim = static_cast<int>(t);
        }
    }
    if (victim < 0) {
        // Nothing below this arrival's QoS: the arrival itself sheds.
        ++report_.globalSheds;
        shedTrack(tr, now, RejectReason::GlobalQueueFull);
        return false;
    }

    // Evict the victim tenant's youngest queued request fleet-wide
    // (latest arrival, ties to the highest id — the least sunk cost).
    TenantId vt = static_cast<TenantId>(victim);
    int vShard = -1;
    Cycles vArrival = 0;
    RequestId vId = 0;
    for (unsigned s = 0; s < shards_.size(); ++s) {
        const std::deque<Request> &fifo = shards_[s].queue->pending(vt);
        if (fifo.empty())
            continue;
        const Request &back = fifo.back();
        if (vShard < 0 || back.arrival > vArrival ||
            (back.arrival == vArrival && back.id > vId)) {
            vShard = static_cast<int>(s);
            vArrival = back.arrival;
            vId = back.id;
        }
    }
    Shard &sh = shards_[static_cast<unsigned>(vShard)];
    std::optional<Request> evicted = sh.queue->removeYoungest(vt);
    CC_ASSERT(evicted.has_value(), "victim queue emptied underneath us");
    recycleRequest(*sh.alloc, *evicted);
    ++report_.globalEvictions;
    note(now, "global evict id=" + std::to_string(evicted->id) +
                  " tenant=" + serve_.tenants[vt].name + " for id=" +
                  std::to_string(tr.id));

    Track &victimTrack = tracks_.at(evicted->id);
    --victimTrack.inFlight;
    if (victimTrack.done) {
        ++report_.hedgeCancelled;   // evicted a stale twin
    } else if (victimTrack.inFlight == 0) {
        sh.queue->recordShed(evicted->id, evicted->tenant,
                             RejectReason::GlobalQueueFull,
                             evicted->arrival);
        shedTrack(victimTrack, now, RejectReason::GlobalQueueFull);
    }
    return true;
}

std::size_t
ShardRouter::phaseOf(Cycles arrival) const
{
    const std::vector<Cycles> &bounds = params_.phaseBoundaries;
    std::size_t i = 0;
    while (i < bounds.size() && arrival >= bounds[i])
        ++i;
    return i;
}

void
ShardRouter::notePhaseServed(Cycles arrival)
{
    if (!report_.phases.empty())
        ++report_.phases[phaseOf(arrival)].served;
}

void
ShardRouter::notePhaseShed(Cycles arrival)
{
    if (!report_.phases.empty())
        ++report_.phases[phaseOf(arrival)].shed;
}

void
ShardRouter::refreshFaultParams(Shard &shard)
{
    fault::FaultParams p = shard.baseFaults;
    for (const ChaosEvent *ev : shard.storms) {
        p.enabled = true;
        if (ev->kind == ChaosKind::Slow) {
            p.marginFailPerDualRowOp = std::min(
                0.5, std::max(p.marginFailPerDualRowOp,
                              params_.slowMarginFailBase * ev->magnitude));
        } else {   // Partial: stuck-at defects under part of the shard
            p.stuckAtPerBlock = std::min(
                0.25, std::max(p.stuckAtPerBlock,
                               params_.partialStuckAtBase * ev->magnitude));
        }
    }
    shard.sys->cc().mutableFaultInjector().setParams(p);
}

void
ShardRouter::crashFlush(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    // The in-flight wave dies with the shard: its (eagerly computed)
    // results are discarded and every request fails over.
    if (sh.busy) {
        sh.busy = false;
        for (const Request &req : sh.wave.requests) {
            Track &tr = tracks_.at(req.id);
            --tr.inFlight;
            recycleRequest(*sh.alloc, req);
            sh.failedCtr->inc();
            failCopy(tr, now, static_cast<int>(s), RejectReason::ShardDown);
        }
        sh.wave = BatchScheduler::Wave{};
    }
    std::vector<Request> queued =
        sh.queue->pruneIf([](const Request &) { return true; });
    for (const Request &req : queued) {
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;
        recycleRequest(*sh.alloc, req);
        sh.failedCtr->inc();
        failCopy(tr, now, static_cast<int>(s), RejectReason::ShardDown);
    }
}

void
ShardRouter::applyChaosStart(const ChaosEvent &ev, Cycles now)
{
    Shard &sh = shards_[ev.shard];
    note(now, std::string("chaos ") + toString(ev.kind) + " start shard=" +
                  std::to_string(ev.shard));
    if (ev.kind == ChaosKind::Crash) {
        bool was_up = sh.up;
        sh.up = false;
        if (was_up) {
            sh.downSince = now;
            sh.breaker.trip(now);
            crashFlush(ev.shard, now);
        }
    } else {
        sh.storms.push_back(&ev);
        refreshFaultParams(sh);
    }
}

void
ShardRouter::applyChaosEnd(const ChaosEvent &ev, Cycles now)
{
    Shard &sh = shards_[ev.shard];
    note(now, std::string("chaos ") + toString(ev.kind) + " end shard=" +
                  std::to_string(ev.shard));
    if (ev.kind == ChaosKind::Crash) {
        if (!sh.up) {
            sh.up = true;
            sh.downCyclesCtr->inc(now - sh.downSince);
        }
    } else {
        sh.storms.erase(
            std::remove(sh.storms.begin(), sh.storms.end(), &ev),
            sh.storms.end());
        refreshFaultParams(sh);
    }
}

void
ShardRouter::pruneDeadlines(unsigned s, Cycles now)
{
    if (params_.admissionDeadline == 0)
        return;
    Shard &sh = shards_[s];
    std::vector<Request> expired = sh.queue->pruneIf(
        [&](const Request &r) {
            return now > r.arrival &&
                   now - r.arrival > params_.admissionDeadline;
        });
    for (const Request &req : expired) {
        recycleRequest(*sh.alloc, req);
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;
        if (tr.done) {
            ++report_.hedgeCancelled;   // stale twin aged out
            continue;
        }
        // Deadlines are terminal: a rebuilt copy would carry the same
        // offered arrival and expire again. A live sibling copy may
        // still commit the track.
        if (tr.inFlight == 0) {
            sh.queue->recordShed(req.id, req.tenant,
                                 RejectReason::DeadlineExpired, req.arrival);
            shedTrack(tr, now, RejectReason::DeadlineExpired);
        }
    }
}

bool
ShardRouter::dispatchShard(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    if (!sh.up || sh.busy)
        return false;
    if (!sh.breaker.allowDispatch(now))
        return false;
    pruneDeadlines(s, now);
    if (sh.queue->empty())
        return false;
    sh.wave = sh.sched->dispatch(now);
    if (sh.wave.requests.empty())
        return false;
    sh.busy = true;
    sh.busyUntil = now + std::max<Cycles>(1, sh.wave.makespan);
    sh.wavesCtr->inc();
    note(now, "dispatch shard=" + std::to_string(s) + " requests=" +
                  std::to_string(sh.wave.requests.size()) + " until=" +
                  std::to_string(sh.busyUntil));
    return true;
}

void
ShardRouter::completeWave(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    sh.busy = false;
    BatchScheduler::Wave wave = std::move(sh.wave);
    sh.wave = BatchScheduler::Wave{};
    sh.sys->advance(0, wave.makespan);

    for (std::size_t i = 0; i < wave.requests.size(); ++i) {
        const Request &req = wave.requests[i];
        const cc::CcExecResult &res = wave.results[i];
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;

        bool timed_out = params_.shardTimeout != 0 &&
                         res.latency > params_.shardTimeout;
        if (timed_out) {
            sh.breaker.onFailure(now);
            sh.failedCtr->inc();
            recycleRequest(*sh.alloc, req);
            note(now, "timeout id=" + std::to_string(req.id) + " shard=" +
                          std::to_string(s) + " latency=" +
                          std::to_string(res.latency));
            failCopy(tr, now, static_cast<int>(s),
                     RejectReason::RetriesExhausted);
            continue;
        }

        sh.breaker.onSuccess(now);
        if (tr.done) {
            // The sibling copy already committed (or the track shed
            // while this copy was executing): discard this result.
            if (tr.parent != kNoParent)
                ++report_.fanoutDiscarded;
            else
                ++report_.hedgeWasted;
            recycleRequest(*sh.alloc, req);
            continue;
        }
        commitCopy(tr, s, req, res, now);
    }
}

FleetReport
ShardRouter::run(const std::vector<workload::RequestSpec> &specs,
                 const ChaosSchedule &chaos)
{
    CC_ASSERT(!ran_, "one run per ShardRouter instance");
    ran_ = true;
    for (const workload::RequestSpec &spec : specs) {
        CC_ASSERT(spec.tenant < serve_.tenants.size(),
                  "request names tenant ", spec.tenant,
                  " but only ", serve_.tenants.size(),
                  " tenants are configured");
    }
    report_.offered = specs.size();
    report_.chaos = chaos.toJson();

    // Per-phase availability windows (classified by offered arrival).
    if (!params_.phaseBoundaries.empty()) {
        CC_ASSERT(std::is_sorted(params_.phaseBoundaries.begin(),
                                 params_.phaseBoundaries.end()),
                  "phase boundaries must be sorted");
        Cycles prev = 0;
        for (Cycles b : params_.phaseBoundaries) {
            report_.phases.push_back(
                FleetReport::PhaseSummary{prev, b, 0, 0, 0, 1.0});
            prev = b;
        }
        report_.phases.push_back(
            FleetReport::PhaseSummary{prev, 0, 0, 0, 0, 1.0});
        for (const workload::RequestSpec &spec : specs)
            ++report_.phases[phaseOf(spec.arrival)].offered;
    }

    if (params_.rebalancePeriod != 0)
        nextRebalance_ = params_.rebalancePeriod;

    // Merge the schedule into a boundary timeline; at equal times ends
    // apply before starts (a shard recovering exactly when another
    // window opens is recovered first), ties break by (shard, kind).
    struct Boundary
    {
        Cycles at;
        int phase;   ///< 0 = end, 1 = start
        const ChaosEvent *ev;
    };
    std::vector<Boundary> bounds;
    for (const ChaosEvent &ev : chaos.events) {
        bounds.push_back(Boundary{ev.start, 1, &ev});
        bounds.push_back(Boundary{ev.end(), 0, &ev});
    }
    std::sort(bounds.begin(), bounds.end(),
              [](const Boundary &a, const Boundary &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.phase != b.phase)
                      return a.phase < b.phase;
                  if (a.ev->shard != b.ev->shard)
                      return a.ev->shard < b.ev->shard;
                  return static_cast<int>(a.ev->kind) <
                         static_cast<int>(b.ev->kind);
              });

    std::size_t next_spec = 0;
    std::size_t next_bound = 0;
    Cycles now = 0;

    while (true) {
        // 1. Chaos boundaries due now.
        while (next_bound < bounds.size() && bounds[next_bound].at <= now) {
            const Boundary &b = bounds[next_bound++];
            if (b.phase == 1)
                applyChaosStart(*b.ev, now);
            else
                applyChaosEnd(*b.ev, now);
        }

        // 2. Wave completions, shard index order.
        for (unsigned s = 0; s < shards_.size(); ++s) {
            if (shards_[s].busy && shards_[s].busyUntil <= now)
                completeWave(s, now);
        }

        // 3. Arrivals due now: route to the tenant's first live shard.
        while (next_spec < specs.size() &&
               specs[next_spec].arrival <= now) {
            const workload::RequestSpec &spec = specs[next_spec++];
            RequestId id = nextId_++;
            Track &tr = tracks_
                            .emplace(id, Track{spec, id, 0, 0, 0, false,
                                               false})
                            .first->second;

            // Multi-shard request: split into fan-out legs behind a
            // fan-in barrier (needs at least two live-able shards).
            if (spec.fanout > 1 && shardCount() > 1) {
                spawnFanout(tr, now);
                continue;
            }

            RejectReason why = RejectReason::ShardDown;
            std::optional<unsigned> s =
                routeShard(spec.tenant, now, -1, &why);
            if (!s) {
                // Brownout shed at the front door: no retry budget is
                // spent on a request the policy refuses outright.
                shedTrack(tr, now, why);
                continue;
            }
            if (!admitGlobal(tr, now))
                continue;
            if (*s != order_[spec.tenant][0])
                ++report_.reroutes;
            if (placeCopy(tr, *s, now, false) && params_.hedgeAge != 0 &&
                hiQos(spec.tenant)) {
                hedges_.push(Timer{now + params_.hedgeAge, id, -1});
            }

            // Migration handoff: inside the drain window the migrating
            // tenant dual-dispatches a shadow copy on the source, so a
            // target crash mid-handoff cannot drop the request.
            if (migration_.active && spec.tenant == migration_.tenant &&
                tr.inFlight > 0 && *s == migration_.to) {
                Shard &src = shards_[migration_.from];
                bool capped = params_.globalQueueCap != 0 &&
                              totalQueued() >= params_.globalQueueCap;
                if (src.up && src.breaker.allowDispatch(now) &&
                    !capped &&
                    placeCopy(tr, migration_.from, now, true)) {
                    ++report_.migrationDualDispatch;
                    note(now, "dual dispatch id=" + std::to_string(id) +
                                  " src=" +
                                  std::to_string(migration_.from));
                }
            }
        }

        // 4. Retry timers due now.
        while (!retries_.empty() && retries_.top().at <= now) {
            Timer t = retries_.top();
            retries_.pop();
            Track &tr = tracks_.at(t.id);
            if (tr.done)
                continue;
            bool isLeg = tr.parent != kNoParent;
            RejectReason why = RejectReason::ShardDown;
            std::optional<unsigned> s = routeShard(
                tr.spec.tenant, now, t.avoidShard, &why, 0, isLeg);
            if (!s)   // nowhere else: the avoided shard may have healed
                s = routeShard(tr.spec.tenant, now, -1, &why, 0, isLeg);
            if (!s) {
                ++tr.attempts;   // a consumed (failed) attempt
                failCopy(tr, now, -1, why);
                continue;
            }
            if (*s != order_[tr.spec.tenant][0])
                ++report_.reroutes;
            placeCopy(tr, *s, now, false);
        }

        // 5. Hedge timers due now.
        while (!hedges_.empty() && hedges_.top().at <= now) {
            Timer t = hedges_.top();
            hedges_.pop();
            Track &tr = tracks_.at(t.id);
            if (tr.done || tr.hedged || tr.inFlight == 0)
                continue;
            // Hedges are optional redundancy: skip at the fleet-wide
            // budget rather than evicting admitted work for them.
            if (params_.globalQueueCap != 0 &&
                totalQueued() >= params_.globalQueueCap) {
                continue;
            }
            std::optional<unsigned> s = routeShard(
                tr.spec.tenant, now, static_cast<int>(tr.primaryShard),
                nullptr, 0, tr.parent != kNoParent);
            if (!s)
                continue;   // no live sibling to hedge onto
            tr.hedged = true;
            if (placeCopy(tr, *s, now, true)) {
                ++report_.hedgesLaunched;
                note(now, "hedge id=" + std::to_string(t.id) +
                              " twin_shard=" + std::to_string(*s));
            } else {
                tr.hedged = false;
            }
        }

        // 6. Fleet controller: finish an expired drain window, then
        //    run hot-spot detector ticks that are due.
        if (params_.rebalancePeriod != 0) {
            if (migration_.active && migration_.drainUntil <= now)
                finishMigration(now);
            while (nextRebalance_ <= now) {
                rebalanceTick(now);
                nextRebalance_ += params_.rebalancePeriod;
            }
        }

        // 7. Dispatch every idle live shard with pending work.
        for (unsigned s = 0; s < shards_.size(); ++s)
            dispatchShard(s, now);

        // 8. Done when every offered request is committed or shed
        //    (fan-out parents count once; legs roll up to them).
        if (next_spec == specs.size() &&
            report_.served + report_.shed == report_.offered) {
            break;
        }

        // 9. Advance simulated time to the next pending event.
        Cycles nxt = kNever;
        if (next_spec < specs.size())
            nxt = std::min(nxt, specs[next_spec].arrival);
        if (next_bound < bounds.size())
            nxt = std::min(nxt, bounds[next_bound].at);
        for (const Shard &sh : shards_) {
            if (sh.busy) {
                nxt = std::min(nxt, sh.busyUntil);
            } else if (sh.up && !sh.queue->empty() &&
                       sh.breaker.state(now) ==
                           CircuitBreaker::State::Open) {
                nxt = std::min(nxt, sh.breaker.halfOpenAt());
            }
        }
        if (!retries_.empty())
            nxt = std::min(nxt, retries_.top().at);
        if (!hedges_.empty())
            nxt = std::min(nxt, hedges_.top().at);
        if (params_.rebalancePeriod != 0) {
            nxt = std::min(nxt, nextRebalance_);
            if (migration_.active)
                nxt = std::min(nxt, migration_.drainUntil);
        }
        CC_ASSERT(nxt != kNever, "router stalled with ",
                  report_.offered - report_.served - report_.shed,
                  " requests outstanding at cycle ", now);
        CC_ASSERT(nxt > now, "router failed to advance time");
        now = nxt;
    }

    // Finalize.
    report_.availability = report_.offered
        ? static_cast<double>(report_.served) /
              static_cast<double>(report_.offered)
        : 1.0;
    report_.elapsed = now;

    for (FleetReport::PhaseSummary &p : report_.phases) {
        CC_ASSERT(p.served + p.shed == p.offered,
                  "phase accounting leak: ", p.served, " + ", p.shed,
                  " != ", p.offered);
        p.availability = p.offered
            ? static_cast<double>(p.served) /
                  static_cast<double>(p.offered)
            : 1.0;
    }

    for (unsigned s = 0; s < shards_.size(); ++s) {
        Shard &sh = shards_[s];
        if (!sh.up)   // still dark at end of run
            sh.downCyclesCtr->inc(now - sh.downSince);
        FleetReport::ShardSummary sum;
        sum.index = s;
        sum.served = sh.servedCtr->value();
        sum.failed = sh.failedCtr->value();
        sum.waves = sh.wavesCtr->value();
        sum.downCycles = sh.downCyclesCtr->value();
        sum.breakerTrips = sh.breaker.trips();
        sum.p50ServiceCycles = sh.serviceHist->quantile(0.50);
        sum.p99ServiceCycles = sh.serviceHist->quantile(0.99);
        report_.breakerTrips += sh.breaker.trips();
        report_.shards.push_back(sum);
    }

    for (TenantId t = 0; t < serve_.tenants.size(); ++t) {
        FleetReport::TenantSummary sum;
        sum.name = serve_.tenants[t].name;
        sum.served = tenantServed_[t]->value();
        for (std::size_t r = 0; r < kNumRejectReasons; ++r)
            sum.shed += fleetShed_->count(t, static_cast<RejectReason>(r));
        sum.p50SojournCycles = tenantSojourn_[t]->quantile(0.50);
        sum.p99SojournCycles = tenantSojourn_[t]->quantile(0.99);
        sum.p999SojournCycles = tenantSojourn_[t]->quantile(0.999);
        report_.tenants.push_back(std::move(sum));
    }

    Json rej = Json::object();
    rej["fleet"] = fleetShed_->toJson();
    Json per_shard = Json::array();
    for (Shard &sh : shards_)
        per_shard.push(sh.queue->rejectionsJson());
    rej["shard_queues"] = std::move(per_shard);
    report_.rejections = std::move(rej);

    return report_;
}

} // namespace ccache::serve
