#include "serve/shard_router.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::serve {

namespace {

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

} // namespace

Json
FleetReport::toJson() const
{
    Json doc = Json::object();
    doc["offered"] = offered;
    doc["served"] = served;
    doc["shed"] = shed;
    doc["availability"] = availability;
    doc["retries"] = retries;
    doc["reroutes"] = reroutes;
    doc["hedges_launched"] = hedgesLaunched;
    doc["hedge_wins"] = hedgeWins;
    doc["hedge_cancelled"] = hedgeCancelled;
    doc["hedge_wasted"] = hedgeWasted;
    doc["breaker_trips"] = breakerTrips;
    doc["golden_checked"] = goldenChecked;
    doc["golden_mismatch"] = goldenMismatch;
    doc["elapsed_cycles"] = elapsed;

    Json sh = Json::array();
    for (const ShardSummary &s : shards) {
        Json e = Json::object();
        e["index"] = s.index;
        e["served"] = s.served;
        e["failed"] = s.failed;
        e["waves"] = s.waves;
        e["down_cycles"] = s.downCycles;
        e["breaker_trips"] = s.breakerTrips;
        e["p50_service_cycles"] = s.p50ServiceCycles;
        e["p99_service_cycles"] = s.p99ServiceCycles;
        sh.push(std::move(e));
    }
    doc["shards"] = std::move(sh);

    Json tens = Json::object();
    for (const TenantSummary &t : tenants) {
        Json e = Json::object();
        e["served"] = t.served;
        e["shed"] = t.shed;
        e["p50_sojourn_cycles"] = t.p50SojournCycles;
        e["p99_sojourn_cycles"] = t.p99SojournCycles;
        e["p999_sojourn_cycles"] = t.p999SojournCycles;
        tens[t.name] = std::move(e);
    }
    doc["tenants"] = std::move(tens);
    doc["rejections"] = rejections;
    doc["chaos"] = chaos;
    return doc;
}

ShardRouter::ShardRouter(const sim::SystemConfig &sys_config,
                         const ServerParams &serve_params,
                         const RouterParams &router_params)
    : serve_(serve_params), params_(router_params),
      backoff_(router_params.retry)
{
    CC_ASSERT(params_.shards >= 1, "router needs at least one shard");
    CC_ASSERT(params_.vnodesPerShard >= 1, "ring needs vnodes");
    CC_ASSERT(!serve_.tenants.empty(), "router needs at least one tenant");
    std::set<std::string> names;
    for (const TenantQos &t : serve_.tenants)
        CC_ASSERT(names.insert(t.name).second,
                  "tenant names must be unique: ", t.name);

    StatGroup fleet = fleetStats_.group("fleet");
    fleetShed_ = std::make_unique<ShedLog>(serve_.tenants,
                                           fleet.group("sheds"));
    fleetSojourn_ = &fleet.logHistogram(
        "sojourn_cycles", "offered arrival -> commit, fleet-wide");
    for (const TenantQos &t : serve_.tenants) {
        StatGroup g = fleet.group(t.name);
        tenantServed_.push_back(&g.counter("served", "commits"));
        tenantSojourn_.push_back(&g.logHistogram(
            "sojourn_cycles", "offered arrival -> commit"));
    }

    for (unsigned s = 0; s < params_.shards; ++s) {
        Shard sh;
        sh.sys = std::make_unique<sim::System>(sys_config);
        sh.alloc = std::make_unique<geometry::LocalityAllocator>(
            serve_.heapBase, serve_.heapBytes);
        StatGroup g = sh.sys->stats().group("serve");
        sh.queue = std::make_unique<RequestQueue>(serve_.queue,
                                                  serve_.tenants, g);
        sh.sched = std::make_unique<BatchScheduler>(
            *sh.sys, *sh.queue, serve_.tenants, serve_.sched, g);
        sh.breaker = CircuitBreaker(params_.breaker);
        sh.baseFaults = sh.sys->cc().mutableFaultInjector().params();

        StatGroup sg = fleetStats_.group("shard." + std::to_string(s));
        sh.servedCtr = &sg.counter("served", "requests committed here");
        sh.failedCtr = &sg.counter("failed",
                                   "requests failed here (crash/timeout)");
        sh.wavesCtr = &sg.counter("waves", "waves dispatched");
        sh.downCyclesCtr = &sg.counter("down_cycles",
                                       "simulated cycles spent crashed");
        sh.serviceHist = &sg.logHistogram("service_cycles",
                                          "per-request service latency");
        shards_.push_back(std::move(sh));
    }

    // Consistent-hash ring: vnodesPerShard points per shard, sorted.
    for (unsigned s = 0; s < params_.shards; ++s) {
        for (unsigned v = 0; v < params_.vnodesPerShard; ++v) {
            std::uint64_t point = mix64(
                mix64(params_.ringSeed ^ (s + 1)) ^
                (0x9e3779b97f4a7c15ULL * (v + 1)));
            ring_.emplace_back(point, s);
        }
    }
    std::sort(ring_.begin(), ring_.end());

    // Per-tenant failover order: distinct shards met on the clockwise
    // successor walk from the tenant's hash point (home first).
    for (const TenantQos &t : serve_.tenants) {
        std::uint64_t key = deriveSeed(params_.ringSeed, t.name);
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(key, 0u),
            [](const auto &a, const auto &b) { return a.first < b.first; });
        std::vector<unsigned> order;
        std::vector<bool> seen(params_.shards, false);
        for (std::size_t i = 0;
             i < ring_.size() && order.size() < params_.shards; ++i) {
            if (it == ring_.end())
                it = ring_.begin();
            if (!seen[it->second]) {
                seen[it->second] = true;
                order.push_back(it->second);
            }
            ++it;
        }
        order_.push_back(std::move(order));
    }
}

ShardRouter::~ShardRouter() = default;

bool
ShardRouter::hiQos(TenantId t) const
{
    return serve_.tenants[t].weight >= params_.brownoutWeightFloor;
}

void
ShardRouter::note(Cycles now, const std::string &what)
{
    if (params_.recordEvents)
        events_.push_back("t=" + std::to_string(now) + " " + what);
}

std::optional<unsigned>
ShardRouter::routeShard(TenantId t, Cycles now, int avoid,
                        RejectReason *why) const
{
    const std::vector<unsigned> &ord = order_[t];
    // Brownout policy: low-QoS tenants only ever use their home shard;
    // when it is dark they shed, so rerouted capacity goes to high-QoS
    // tenants first.
    const std::size_t span = hiQos(t) ? ord.size() : 1;
    bool saw_breaker = false;
    for (std::size_t i = 0; i < span; ++i) {
        unsigned s = ord[i];
        if (static_cast<int>(s) == avoid)
            continue;
        const Shard &sh = shards_[s];
        if (!sh.up)
            continue;
        if (!sh.breaker.allowDispatch(now)) {
            saw_breaker = true;
            continue;
        }
        return s;
    }
    if (why) {
        *why = saw_breaker ? RejectReason::BreakerOpen
                           : RejectReason::ShardDown;
    }
    return std::nullopt;
}

bool
ShardRouter::placeCopy(Track &tr, unsigned s, Cycles now, bool hedge)
{
    Shard &sh = shards_[s];
    if (!hedge) {
        ++tr.attempts;
        tr.primaryShard = s;
    }

    RequestBuildParams build;
    build.warmL3 = serve_.warmL3;
    build.allocGroups = serve_.allocGroups;
    build.fillPattern = params_.verifyGolden;
    build.patternSeed = params_.patternSeed;

    RejectReason why = RejectReason::NoCapacity;
    std::optional<Request> req =
        buildRequest(*sh.sys, *sh.alloc, build, tr.spec, tr.id, &why);
    if (!req) {
        if (!hedge)
            failCopy(tr, now, static_cast<int>(s), why);
        return false;
    }
    if (std::optional<RejectReason> reason = sh.queue->offer(*req, now)) {
        recycleRequest(*sh.alloc, *req);
        if (!hedge)
            failCopy(tr, now, static_cast<int>(s), *reason);
        return false;
    }
    ++tr.inFlight;
    return true;
}

void
ShardRouter::failCopy(Track &tr, Cycles now, int shard, RejectReason reason)
{
    if (tr.done)
        return;
    if (tr.inFlight > 0)
        return;   // a sibling copy is still alive; let it decide
    if (tr.attempts >= params_.retry.maxAttempts) {
        shedTrack(tr, now, reason == RejectReason::DeadlineExpired
                               ? reason
                               : RejectReason::RetriesExhausted);
        return;
    }
    Cycles delay = backoff_.delay(tr.id, tr.attempts);
    retries_.push(Timer{now + delay, tr.id, shard});
    ++report_.retries;
    note(now, "retry id=" + std::to_string(tr.id) + " attempt=" +
                  std::to_string(tr.attempts) + " after=" +
                  std::to_string(delay) + " avoid=" +
                  std::to_string(shard));
}

void
ShardRouter::shedTrack(Track &tr, Cycles now, RejectReason reason)
{
    if (tr.done)
        return;
    tr.done = true;
    ++report_.shed;
    fleetShed_->record(tr.id, tr.spec.tenant, reason, tr.spec.arrival);
    note(now, "shed id=" + std::to_string(tr.id) + " reason=" +
                  toString(reason));
}

void
ShardRouter::commitCopy(Track &tr, unsigned s, const Request &req,
                        const cc::CcExecResult &result, Cycles now)
{
    Shard &sh = shards_[s];
    if (params_.verifyGolden) {
        ++report_.goldenChecked;
        if (!goldenVerifyRequest(*sh.sys, req, result.result)) {
            ++report_.goldenMismatch;
            note(now, "GOLDEN MISMATCH id=" + std::to_string(tr.id));
        }
    }
    recycleRequest(*sh.alloc, req);

    tr.done = true;
    ++report_.served;
    sh.servedCtr->inc();
    sh.serviceHist->sample(result.latency);
    Cycles sojourn = now > tr.spec.arrival ? now - tr.spec.arrival : 0;
    fleetSojourn_->sample(sojourn);
    tenantServed_[tr.spec.tenant]->inc();
    tenantSojourn_[tr.spec.tenant]->sample(sojourn);
    if (tr.hedged && s != tr.primaryShard)
        ++report_.hedgeWins;
    note(now, "commit id=" + std::to_string(tr.id) + " shard=" +
                  std::to_string(s));

    // First commit wins: cancel any still-queued sibling copy. An
    // executing sibling is discarded (hedge_wasted) at its completion.
    if (tr.inFlight > 0) {
        for (unsigned o = 0; o < shards_.size(); ++o) {
            if (std::optional<Request> twin =
                    shards_[o].queue->removeById(tr.id)) {
                recycleRequest(*shards_[o].alloc, *twin);
                --tr.inFlight;
                ++report_.hedgeCancelled;
            }
        }
    }
}

void
ShardRouter::refreshFaultParams(Shard &shard)
{
    fault::FaultParams p = shard.baseFaults;
    for (const ChaosEvent *ev : shard.storms) {
        p.enabled = true;
        if (ev->kind == ChaosKind::Slow) {
            p.marginFailPerDualRowOp = std::min(
                0.5, std::max(p.marginFailPerDualRowOp,
                              params_.slowMarginFailBase * ev->magnitude));
        } else {   // Partial: stuck-at defects under part of the shard
            p.stuckAtPerBlock = std::min(
                0.25, std::max(p.stuckAtPerBlock,
                               params_.partialStuckAtBase * ev->magnitude));
        }
    }
    shard.sys->cc().mutableFaultInjector().setParams(p);
}

void
ShardRouter::crashFlush(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    // The in-flight wave dies with the shard: its (eagerly computed)
    // results are discarded and every request fails over.
    if (sh.busy) {
        sh.busy = false;
        for (const Request &req : sh.wave.requests) {
            Track &tr = tracks_.at(req.id);
            --tr.inFlight;
            recycleRequest(*sh.alloc, req);
            sh.failedCtr->inc();
            failCopy(tr, now, static_cast<int>(s), RejectReason::ShardDown);
        }
        sh.wave = BatchScheduler::Wave{};
    }
    std::vector<Request> queued =
        sh.queue->pruneIf([](const Request &) { return true; });
    for (const Request &req : queued) {
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;
        recycleRequest(*sh.alloc, req);
        sh.failedCtr->inc();
        failCopy(tr, now, static_cast<int>(s), RejectReason::ShardDown);
    }
}

void
ShardRouter::applyChaosStart(const ChaosEvent &ev, Cycles now)
{
    Shard &sh = shards_[ev.shard];
    note(now, std::string("chaos ") + toString(ev.kind) + " start shard=" +
                  std::to_string(ev.shard));
    if (ev.kind == ChaosKind::Crash) {
        bool was_up = sh.up;
        sh.up = false;
        if (was_up) {
            sh.downSince = now;
            sh.breaker.trip(now);
            crashFlush(ev.shard, now);
        }
    } else {
        sh.storms.push_back(&ev);
        refreshFaultParams(sh);
    }
}

void
ShardRouter::applyChaosEnd(const ChaosEvent &ev, Cycles now)
{
    Shard &sh = shards_[ev.shard];
    note(now, std::string("chaos ") + toString(ev.kind) + " end shard=" +
                  std::to_string(ev.shard));
    if (ev.kind == ChaosKind::Crash) {
        if (!sh.up) {
            sh.up = true;
            sh.downCyclesCtr->inc(now - sh.downSince);
        }
    } else {
        sh.storms.erase(
            std::remove(sh.storms.begin(), sh.storms.end(), &ev),
            sh.storms.end());
        refreshFaultParams(sh);
    }
}

void
ShardRouter::pruneDeadlines(unsigned s, Cycles now)
{
    if (params_.admissionDeadline == 0)
        return;
    Shard &sh = shards_[s];
    std::vector<Request> expired = sh.queue->pruneIf(
        [&](const Request &r) {
            return now > r.arrival &&
                   now - r.arrival > params_.admissionDeadline;
        });
    for (const Request &req : expired) {
        recycleRequest(*sh.alloc, req);
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;
        if (tr.done) {
            ++report_.hedgeCancelled;   // stale twin aged out
            continue;
        }
        // Deadlines are terminal: a rebuilt copy would carry the same
        // offered arrival and expire again. A live sibling copy may
        // still commit the track.
        if (tr.inFlight == 0) {
            sh.queue->recordShed(req.id, req.tenant,
                                 RejectReason::DeadlineExpired, req.arrival);
            shedTrack(tr, now, RejectReason::DeadlineExpired);
        }
    }
}

bool
ShardRouter::dispatchShard(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    if (!sh.up || sh.busy)
        return false;
    if (!sh.breaker.allowDispatch(now))
        return false;
    pruneDeadlines(s, now);
    if (sh.queue->empty())
        return false;
    sh.wave = sh.sched->dispatch(now);
    if (sh.wave.requests.empty())
        return false;
    sh.busy = true;
    sh.busyUntil = now + std::max<Cycles>(1, sh.wave.makespan);
    sh.wavesCtr->inc();
    note(now, "dispatch shard=" + std::to_string(s) + " requests=" +
                  std::to_string(sh.wave.requests.size()) + " until=" +
                  std::to_string(sh.busyUntil));
    return true;
}

void
ShardRouter::completeWave(unsigned s, Cycles now)
{
    Shard &sh = shards_[s];
    sh.busy = false;
    BatchScheduler::Wave wave = std::move(sh.wave);
    sh.wave = BatchScheduler::Wave{};
    sh.sys->advance(0, wave.makespan);

    for (std::size_t i = 0; i < wave.requests.size(); ++i) {
        const Request &req = wave.requests[i];
        const cc::CcExecResult &res = wave.results[i];
        Track &tr = tracks_.at(req.id);
        --tr.inFlight;

        bool timed_out = params_.shardTimeout != 0 &&
                         res.latency > params_.shardTimeout;
        if (timed_out) {
            sh.breaker.onFailure(now);
            sh.failedCtr->inc();
            recycleRequest(*sh.alloc, req);
            note(now, "timeout id=" + std::to_string(req.id) + " shard=" +
                          std::to_string(s) + " latency=" +
                          std::to_string(res.latency));
            failCopy(tr, now, static_cast<int>(s),
                     RejectReason::RetriesExhausted);
            continue;
        }

        sh.breaker.onSuccess(now);
        if (tr.done) {
            // The sibling copy already committed (or the track shed
            // while this copy was executing): discard this result.
            ++report_.hedgeWasted;
            recycleRequest(*sh.alloc, req);
            continue;
        }
        commitCopy(tr, s, req, res, now);
    }
}

FleetReport
ShardRouter::run(const std::vector<workload::RequestSpec> &specs,
                 const ChaosSchedule &chaos)
{
    CC_ASSERT(!ran_, "one run per ShardRouter instance");
    ran_ = true;
    for (const workload::RequestSpec &spec : specs) {
        CC_ASSERT(spec.tenant < serve_.tenants.size(),
                  "request names tenant ", spec.tenant,
                  " but only ", serve_.tenants.size(),
                  " tenants are configured");
    }
    report_.offered = specs.size();
    report_.chaos = chaos.toJson();

    // Merge the schedule into a boundary timeline; at equal times ends
    // apply before starts (a shard recovering exactly when another
    // window opens is recovered first), ties break by (shard, kind).
    struct Boundary
    {
        Cycles at;
        int phase;   ///< 0 = end, 1 = start
        const ChaosEvent *ev;
    };
    std::vector<Boundary> bounds;
    for (const ChaosEvent &ev : chaos.events) {
        bounds.push_back(Boundary{ev.start, 1, &ev});
        bounds.push_back(Boundary{ev.end(), 0, &ev});
    }
    std::sort(bounds.begin(), bounds.end(),
              [](const Boundary &a, const Boundary &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.phase != b.phase)
                      return a.phase < b.phase;
                  if (a.ev->shard != b.ev->shard)
                      return a.ev->shard < b.ev->shard;
                  return static_cast<int>(a.ev->kind) <
                         static_cast<int>(b.ev->kind);
              });

    std::size_t next_spec = 0;
    std::size_t next_bound = 0;
    Cycles now = 0;

    while (true) {
        // 1. Chaos boundaries due now.
        while (next_bound < bounds.size() && bounds[next_bound].at <= now) {
            const Boundary &b = bounds[next_bound++];
            if (b.phase == 1)
                applyChaosStart(*b.ev, now);
            else
                applyChaosEnd(*b.ev, now);
        }

        // 2. Wave completions, shard index order.
        for (unsigned s = 0; s < shards_.size(); ++s) {
            if (shards_[s].busy && shards_[s].busyUntil <= now)
                completeWave(s, now);
        }

        // 3. Arrivals due now: route to the tenant's first live shard.
        while (next_spec < specs.size() &&
               specs[next_spec].arrival <= now) {
            const workload::RequestSpec &spec = specs[next_spec++];
            RequestId id = nextId_++;
            Track &tr = tracks_
                            .emplace(id, Track{spec, id, 0, 0, 0, false,
                                               false})
                            .first->second;
            RejectReason why = RejectReason::ShardDown;
            std::optional<unsigned> s =
                routeShard(spec.tenant, now, -1, &why);
            if (!s) {
                // Brownout shed at the front door: no retry budget is
                // spent on a request the policy refuses outright.
                shedTrack(tr, now, why);
                continue;
            }
            if (*s != order_[spec.tenant][0])
                ++report_.reroutes;
            if (placeCopy(tr, *s, now, false) && params_.hedgeAge != 0 &&
                hiQos(spec.tenant)) {
                hedges_.push(Timer{now + params_.hedgeAge, id, -1});
            }
        }

        // 4. Retry timers due now.
        while (!retries_.empty() && retries_.top().at <= now) {
            Timer t = retries_.top();
            retries_.pop();
            Track &tr = tracks_.at(t.id);
            if (tr.done)
                continue;
            RejectReason why = RejectReason::ShardDown;
            std::optional<unsigned> s =
                routeShard(tr.spec.tenant, now, t.avoidShard, &why);
            if (!s)   // nowhere else: the avoided shard may have healed
                s = routeShard(tr.spec.tenant, now, -1, &why);
            if (!s) {
                ++tr.attempts;   // a consumed (failed) attempt
                failCopy(tr, now, -1, why);
                continue;
            }
            if (*s != order_[tr.spec.tenant][0])
                ++report_.reroutes;
            placeCopy(tr, *s, now, false);
        }

        // 5. Hedge timers due now.
        while (!hedges_.empty() && hedges_.top().at <= now) {
            Timer t = hedges_.top();
            hedges_.pop();
            Track &tr = tracks_.at(t.id);
            if (tr.done || tr.hedged || tr.inFlight == 0)
                continue;
            std::optional<unsigned> s = routeShard(
                tr.spec.tenant, now,
                static_cast<int>(tr.primaryShard), nullptr);
            if (!s)
                continue;   // no live sibling to hedge onto
            tr.hedged = true;
            if (placeCopy(tr, *s, now, true)) {
                ++report_.hedgesLaunched;
                note(now, "hedge id=" + std::to_string(t.id) +
                              " twin_shard=" + std::to_string(*s));
            } else {
                tr.hedged = false;
            }
        }

        // 6. Dispatch every idle live shard with pending work.
        for (unsigned s = 0; s < shards_.size(); ++s)
            dispatchShard(s, now);

        // 7. Done when every offered request is committed or shed.
        if (next_spec == specs.size() &&
            report_.served + report_.shed == report_.offered) {
            break;
        }

        // 8. Advance simulated time to the next pending event.
        Cycles nxt = kNever;
        if (next_spec < specs.size())
            nxt = std::min(nxt, specs[next_spec].arrival);
        if (next_bound < bounds.size())
            nxt = std::min(nxt, bounds[next_bound].at);
        for (const Shard &sh : shards_) {
            if (sh.busy) {
                nxt = std::min(nxt, sh.busyUntil);
            } else if (sh.up && !sh.queue->empty() &&
                       sh.breaker.state(now) ==
                           CircuitBreaker::State::Open) {
                nxt = std::min(nxt, sh.breaker.halfOpenAt());
            }
        }
        if (!retries_.empty())
            nxt = std::min(nxt, retries_.top().at);
        if (!hedges_.empty())
            nxt = std::min(nxt, hedges_.top().at);
        CC_ASSERT(nxt != kNever, "router stalled with ",
                  report_.offered - report_.served - report_.shed,
                  " requests outstanding at cycle ", now);
        CC_ASSERT(nxt > now, "router failed to advance time");
        now = nxt;
    }

    // Finalize.
    report_.availability = report_.offered
        ? static_cast<double>(report_.served) /
              static_cast<double>(report_.offered)
        : 1.0;
    report_.elapsed = now;

    for (unsigned s = 0; s < shards_.size(); ++s) {
        Shard &sh = shards_[s];
        if (!sh.up)   // still dark at end of run
            sh.downCyclesCtr->inc(now - sh.downSince);
        FleetReport::ShardSummary sum;
        sum.index = s;
        sum.served = sh.servedCtr->value();
        sum.failed = sh.failedCtr->value();
        sum.waves = sh.wavesCtr->value();
        sum.downCycles = sh.downCyclesCtr->value();
        sum.breakerTrips = sh.breaker.trips();
        sum.p50ServiceCycles = sh.serviceHist->quantile(0.50);
        sum.p99ServiceCycles = sh.serviceHist->quantile(0.99);
        report_.breakerTrips += sh.breaker.trips();
        report_.shards.push_back(sum);
    }

    for (TenantId t = 0; t < serve_.tenants.size(); ++t) {
        FleetReport::TenantSummary sum;
        sum.name = serve_.tenants[t].name;
        sum.served = tenantServed_[t]->value();
        for (std::size_t r = 0; r < kNumRejectReasons; ++r)
            sum.shed += fleetShed_->count(t, static_cast<RejectReason>(r));
        sum.p50SojournCycles = tenantSojourn_[t]->quantile(0.50);
        sum.p99SojournCycles = tenantSojourn_[t]->quantile(0.99);
        sum.p999SojournCycles = tenantSojourn_[t]->quantile(0.999);
        report_.tenants.push_back(std::move(sum));
    }

    Json rej = Json::object();
    rej["fleet"] = fleetShed_->toJson();
    Json per_shard = Json::array();
    for (Shard &sh : shards_)
        per_shard.push(sh.queue->rejectionsJson());
    rej["shard_queues"] = std::move(per_shard);
    report_.rejections = std::move(rej);

    return report_;
}

} // namespace ccache::serve
