#include "serve/shed_log.hh"

#include "common/logging.hh"

namespace ccache::serve {

ShedLog::ShedLog(const std::vector<TenantQos> &tenants, StatGroup stats,
                 std::size_t max_samples)
    : qos_(tenants), maxSamples_(max_samples),
      counts_(tenants.size(),
              std::vector<std::uint64_t>(kNumRejectReasons, 0)),
      stats_(stats)
{
    CC_ASSERT(!tenants.empty(), "shed log needs at least one tenant");
    for (const TenantQos &t : tenants) {
        StatGroup g = stats_.group(t.name);
        tenantCtr_.push_back(
            &g.counter("rejected", "requests shed, all reasons"));
        std::vector<StatCounter *> per_reason;
        for (std::size_t r = 0; r < kNumRejectReasons; ++r)
            per_reason.push_back(&g.counter(
                std::string("rejected.") +
                    toString(static_cast<RejectReason>(r)),
                "requests shed for this reason"));
        reasonCtr_.push_back(std::move(per_reason));
    }
}

void
ShedLog::record(RequestId id, TenantId tenant, RejectReason reason,
                Cycles arrival)
{
    CC_ASSERT(tenant < counts_.size(), "unknown tenant in shed record");
    ++total_;
    ++counts_[tenant][static_cast<std::size_t>(reason)];
    tenantCtr_[tenant]->inc();
    reasonCtr_[tenant][static_cast<std::size_t>(reason)]->inc();
    if (samples_.size() < maxSamples_)
        samples_.push_back({id, tenant, reason, arrival});
}

std::uint64_t
ShedLog::count(TenantId tenant, RejectReason reason) const
{
    CC_ASSERT(tenant < counts_.size(), "unknown tenant");
    return counts_[tenant][static_cast<std::size_t>(reason)];
}

std::uint64_t
ShedLog::countByReason(RejectReason reason) const
{
    std::uint64_t n = 0;
    for (const auto &per_tenant : counts_)
        n += per_tenant[static_cast<std::size_t>(reason)];
    return n;
}

Json
ShedLog::toJson() const
{
    Json doc = Json::object();
    doc["total"] = total_;
    Json by_reason = Json::object();
    for (std::size_t r = 0; r < kNumRejectReasons; ++r) {
        std::uint64_t n = countByReason(static_cast<RejectReason>(r));
        if (n != 0)
            by_reason[toString(static_cast<RejectReason>(r))] = n;
    }
    doc["by_reason"] = std::move(by_reason);
    Json by_tenant = Json::object();
    for (std::size_t t = 0; t < counts_.size(); ++t) {
        Json reasons = Json::object();
        bool any = false;
        for (std::size_t r = 0; r < kNumRejectReasons; ++r) {
            if (counts_[t][r] == 0)
                continue;
            reasons[toString(static_cast<RejectReason>(r))] = counts_[t][r];
            any = true;
        }
        if (any)
            by_tenant[qos_[t].name] = std::move(reasons);
    }
    doc["by_tenant"] = std::move(by_tenant);
    Json samples = Json::array();
    for (const Sample &s : samples_) {
        Json e = Json::object();
        e["id"] = s.id;
        e["tenant"] = qos_[s.tenant].name;
        e["reason"] = toString(s.reason);
        e["arrival"] = s.arrival;
        samples.push(std::move(e));
    }
    doc["samples"] = std::move(samples);
    return doc;
}

} // namespace ccache::serve
