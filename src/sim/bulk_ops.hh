/**
 * @file
 * The four microbenchmark bulk operations of Section VI-D (copy, compare,
 * search, logical OR) as engine-independent kernel descriptors.
 */

#ifndef CCACHE_SIM_BULK_OPS_HH
#define CCACHE_SIM_BULK_OPS_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ccache::sim {

/** Microbenchmark kernels (Figure 7). */
enum class BulkKernel { Copy, Compare, Search, LogicalOr };

const char *toString(BulkKernel k);

/** Result of running one bulk kernel on one engine. */
struct KernelResult
{
    Cycles cycles = 0;
    std::uint64_t instructions = 0;

    /** compare: 1 if the regions were equal; search: match mask of the
     *  last issued search instruction; otherwise 0. */
    std::uint64_t value = 0;

    /** Block-granular operations executed (throughput denominator). */
    std::uint64_t blockOps = 0;

    /** Throughput in block operations per second at the core clock. */
    double
    blockOpsPerSecond() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(blockOps) / cyclesToSeconds(cycles);
    }
};

} // namespace ccache::sim

#endif // CCACHE_SIM_BULK_OPS_HH
