/**
 * @file
 * Top-level system assembly: the one object benchmarks and applications
 * instantiate. Owns the statistics registry, energy model, coherent
 * hierarchy, CC controller and the three execution engines (scalar
 * "Base", 32-byte SIMD "Base_32", and Compute Cache).
 */

#ifndef CCACHE_SIM_SYSTEM_HH
#define CCACHE_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "common/event_trace.hh"
#include "sim/engines.hh"
#include "verify/coherence_checker.hh"
#include "verify/watchdog.hh"

namespace ccache::sim {

/** Runtime-verification layer (DESIGN.md §9). */
struct VerifyConfig
{
    /** Install the CoherenceChecker (audits MESI invariants after every
     *  hierarchy transaction and CC instruction). Off by default in
     *  benches; tests turn it on, and $CCACHE_VERIFY_COHERENCE=1 forces
     *  it on for any System (how CI runs the whole suite checked). */
    bool coherenceChecker = false;
    verify::CoherenceCheckerParams checker;

    /** Install the ProgressWatchdog (bounded-progress ceilings on ring
     *  traffic, directory ops and CC retry ladders). */
    bool watchdog = false;
    verify::WatchdogParams watchdogParams;
};

/** Aggregate configuration (defaults reproduce Table IV). */
struct SystemConfig
{
    cache::HierarchyParams hierarchy;
    energy::EnergyParams energy;
    cc::CcControllerParams cc;
    CoreParams core;
    VerifyConfig verify;
};

/** The assembled machine. */
class System
{
  public:
    explicit System(const SystemConfig &config = SystemConfig{});

    const SystemConfig &config() const { return config_; }

    StatRegistry &stats() { return stats_; }

    /**
     * Timeline event sink, pre-wired into the hierarchy, ring and CC
     * controller. Disabled by default (near-zero overhead: one branch
     * per hook site); call `trace().enable()` to start recording and
     * `trace().writeFile(...)` to emit Chrome trace-event JSON for
     * Perfetto / chrome://tracing.
     */
    EventTrace &trace() { return trace_; }

    energy::EnergyModel &energy() { return *energy_; }
    cache::Hierarchy &hierarchy() { return *hier_; }
    cc::CcController &cc() { return *cc_; }

    /** Installed verification hooks, null when disabled. @{ */
    verify::CoherenceChecker *coherenceChecker() { return checker_.get(); }
    verify::ProgressWatchdog *watchdog() { return watchdog_.get(); }
    /** @} */

    BaselineEngine &scalar() { return *scalar_; }
    BaselineEngine &simd32() { return *simd_; }
    CcEngine &ccEngine() { return *ccEngine_; }

    /** Workload setup (functional back-door, no timing/energy). @{ */
    void load(Addr addr, const void *data, std::size_t len);
    std::vector<std::uint8_t> dump(Addr addr, std::size_t len);
    /** @} */

    /**
     * Warm an address range into a cache level for @p core without
     * charging energy or time (benchmark preconditioning, e.g. "all
     * operands are in L3" in Section VI-D).
     */
    void warm(CacheLevel level, CoreId core, Addr addr, std::size_t len);

    /** Advance a core's local clock by @p cycles. */
    void advance(CoreId core, Cycles cycles);

    Cycles coreCycles(CoreId core) const { return clocks_[core]; }

    /** Wall-clock of the whole run: slowest core. */
    Cycles elapsed() const;

    /** Static+dynamic energy totals at the current elapsed time. */
    energy::EnergyTotals totals() const;

    /** Reset time, stats and energy (not cache/memory contents). */
    void resetMetrics();

  private:
    SystemConfig config_;
    StatRegistry stats_;
    EventTrace trace_;
    std::unique_ptr<energy::EnergyModel> energy_;
    std::unique_ptr<cache::Hierarchy> hier_;
    std::unique_ptr<cc::CcController> cc_;
    std::unique_ptr<verify::CoherenceChecker> checker_;
    std::unique_ptr<verify::ProgressWatchdog> watchdog_;
    std::unique_ptr<BaselineEngine> scalar_;
    std::unique_ptr<BaselineEngine> simd_;
    std::unique_ptr<CcEngine> ccEngine_;
    std::vector<Cycles> clocks_;
};

} // namespace ccache::sim

#endif // CCACHE_SIM_SYSTEM_HH
