/**
 * @file
 * Execution engines: the conventional-core baselines (scalar and 32-byte
 * SIMD, the paper's "Base" and "Base_32") and the Compute Cache engine.
 *
 * The baseline engines execute bulk kernels as real load/store streams
 * through the coherent hierarchy — every access moves data, charges
 * energy and contributes latency to the core cost model — so baseline
 * numbers emerge from the same substrate the CC engine uses.
 */

#ifndef CCACHE_SIM_ENGINES_HH
#define CCACHE_SIM_ENGINES_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "cc/cc_controller.hh"
#include "sim/bulk_ops.hh"
#include "sim/core_model.hh"

namespace ccache::sim {

/** Conventional-core engine with configurable vector width. */
class BaselineEngine
{
  public:
    /**
     * @param vector_bytes 8 for the scalar core, 32 for Base_32's SIMD.
     */
    BaselineEngine(cache::Hierarchy &hier, energy::EnergyModel *energy,
                   StatRegistry *stats, std::size_t vector_bytes,
                   const CoreParams &core = CoreParams{});

    std::size_t vectorBytes() const { return vectorBytes_; }

    /** memcpy-style copy of @p n bytes. */
    KernelResult copy(CoreId core, Addr src, Addr dst, std::size_t n);

    /** memcmp-style equality compare; value = 1 when equal. */
    KernelResult compare(CoreId core, Addr a, Addr b, std::size_t n);

    /** Scan @p n bytes for the 64-byte key at @p key; value = number of
     *  matching 64-byte chunks. */
    KernelResult search(CoreId core, Addr data, Addr key, std::size_t n);

    /** dst[i] = a[i] | b[i] over @p n bytes. */
    KernelResult logicalOr(CoreId core, Addr a, Addr b, Addr dst,
                           std::size_t n);

    /** dst[i] = a[i] & b[i] over @p n bytes. */
    KernelResult logicalAnd(CoreId core, Addr a, Addr b, Addr dst,
                            std::size_t n);

    /** Dispatch by kernel id (bench convenience). For Search, @p b is
     *  the key address. */
    KernelResult run(BulkKernel k, CoreId core, Addr a, Addr b, Addr dst,
                     std::size_t n);

  private:
    /** Shared implementation of the element-wise logical kernels. */
    KernelResult logicalOp(CoreId core, Addr a, Addr b, Addr dst,
                           std::size_t n, bool is_and);

    /** One vector load; returns chunk data via @p out. */
    void load(CoreCostModel &cost, CoreId core, Addr addr,
              std::uint8_t *out);

    /** One vector store. */
    void store(CoreCostModel &cost, CoreId core, Addr addr,
               const std::uint8_t *data);

    cache::Hierarchy &hier_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
    std::size_t vectorBytes_;
    CoreParams coreParams_;
};

/** Compute Cache engine: drives the CC controller with Table II
 *  instructions chunked to the ISA limits. */
class CcEngine
{
  public:
    CcEngine(cache::Hierarchy &hier, cc::CcController &ctrl,
             energy::EnergyModel *energy, StatRegistry *stats);

    /** Largest vector issued per CC instruction. */
    static constexpr std::size_t kChunk = cc::kMaxVectorBytes;

    KernelResult copy(CoreId core, Addr src, Addr dst, std::size_t n);
    KernelResult compare(CoreId core, Addr a, Addr b, std::size_t n);
    KernelResult search(CoreId core, Addr data, Addr key, std::size_t n);
    KernelResult logicalOr(CoreId core, Addr a, Addr b, Addr dst,
                           std::size_t n);
    KernelResult buz(CoreId core, Addr dst, std::size_t n);

    KernelResult run(BulkKernel k, CoreId core, Addr a, Addr b, Addr dst,
                     std::size_t n);

  private:
    cache::Hierarchy &hier_;
    cc::CcController &ctrl_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
};

} // namespace ccache::sim

#endif // CCACHE_SIM_ENGINES_HH
