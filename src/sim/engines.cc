#include "sim/engines.hh"

#include <algorithm>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::sim {

BaselineEngine::BaselineEngine(cache::Hierarchy &hier,
                               energy::EnergyModel *energy,
                               StatRegistry *stats,
                               std::size_t vector_bytes,
                               const CoreParams &core)
    : hier_(hier), energy_(energy), stats_(stats),
      vectorBytes_(vector_bytes), coreParams_(core)
{
    CC_ASSERT(vector_bytes >= 8 && vector_bytes <= kBlockSize &&
                  isPowerOfTwo(vector_bytes),
              "vector width must be a power of two in [8, 64]");
}

void
BaselineEngine::load(CoreCostModel &cost, CoreId core, Addr addr,
                     std::uint8_t *out)
{
    Cycles lat = hier_.loadBytes(core, addr, out, vectorBytes_);
    cost.addMemAccess(lat, hier_.params().l1.accessLatency);
    if (energy_) {
        if (vectorBytes_ > 8)
            energy_->chargeVectorInstructions(1);
        else
            energy_->chargeInstructions(1);
    }
}

void
BaselineEngine::store(CoreCostModel &cost, CoreId core, Addr addr,
                      const std::uint8_t *data)
{
    Cycles lat = hier_.storeBytes(core, addr, data, vectorBytes_);
    cost.addMemAccess(lat, hier_.params().l1.accessLatency);
    if (energy_) {
        if (vectorBytes_ > 8)
            energy_->chargeVectorInstructions(1);
        else
            energy_->chargeInstructions(1);
    }
}

KernelResult
BaselineEngine::copy(CoreId core, Addr src, Addr dst, std::size_t n)
{
    CoreCostModel cost(coreParams_);
    std::vector<std::uint8_t> buf(vectorBytes_);
    for (std::size_t off = 0; off < n; off += vectorBytes_) {
        load(cost, core, src + off, buf.data());
        store(cost, core, dst + off, buf.data());
        cost.addInstrs(coreParams_.loopOverheadInstrs);
    }
    if (energy_)
        energy_->chargeInstructions(
            (n / vectorBytes_) * coreParams_.loopOverheadInstrs);

    KernelResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions() +
        (n / vectorBytes_) * coreParams_.loopOverheadInstrs;
    res.blockOps = divCeil(n, kBlockSize);
    return res;
}

KernelResult
BaselineEngine::compare(CoreId core, Addr a, Addr b, std::size_t n)
{
    CoreCostModel cost(coreParams_);
    std::vector<std::uint8_t> ba(vectorBytes_), bb(vectorBytes_);
    bool equal = true;
    std::uint64_t alu = 0;
    for (std::size_t off = 0; off < n; off += vectorBytes_) {
        load(cost, core, a + off, ba.data());
        load(cost, core, b + off, bb.data());
        cost.addInstrs(1 + coreParams_.loopOverheadInstrs);  // vector cmp
        ++alu;
        equal &= std::memcmp(ba.data(), bb.data(), vectorBytes_) == 0;
    }
    if (energy_) {
        energy_->chargeInstructions(alu * coreParams_.loopOverheadInstrs);
        if (vectorBytes_ > 8)
            energy_->chargeVectorInstructions(alu);
        else
            energy_->chargeInstructions(alu);
    }

    KernelResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions() +
        alu * coreParams_.loopOverheadInstrs;
    res.value = equal ? 1 : 0;
    res.blockOps = divCeil(n, kBlockSize);
    return res;
}

KernelResult
BaselineEngine::search(CoreId core, Addr data, Addr key, std::size_t n)
{
    CoreCostModel cost(coreParams_);
    std::vector<std::uint8_t> chunk(vectorBytes_), kchunk(vectorBytes_);
    std::uint64_t matches = 0;
    std::uint64_t alu = 0;
    for (std::size_t blk = 0; blk < divCeil(n, kBlockSize); ++blk) {
        bool match = true;
        for (std::size_t off = 0; off < kBlockSize; off += vectorBytes_) {
            load(cost, core, data + blk * kBlockSize + off, chunk.data());
            // The key stays hot in L1 after the first touch.
            load(cost, core, key + off, kchunk.data());
            cost.addInstrs(1 + coreParams_.loopOverheadInstrs);
            ++alu;
            match &= std::memcmp(chunk.data(), kchunk.data(),
                                 vectorBytes_) == 0;
        }
        matches += match ? 1 : 0;
    }
    if (energy_) {
        energy_->chargeInstructions(alu * coreParams_.loopOverheadInstrs);
        if (vectorBytes_ > 8)
            energy_->chargeVectorInstructions(alu);
        else
            energy_->chargeInstructions(alu);
    }

    KernelResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions() +
        alu * coreParams_.loopOverheadInstrs;
    res.value = matches;
    res.blockOps = divCeil(n, kBlockSize);
    return res;
}

KernelResult
BaselineEngine::logicalOr(CoreId core, Addr a, Addr b, Addr dst,
                          std::size_t n)
{
    return logicalOp(core, a, b, dst, n, /*is_and=*/false);
}

KernelResult
BaselineEngine::logicalAnd(CoreId core, Addr a, Addr b, Addr dst,
                           std::size_t n)
{
    return logicalOp(core, a, b, dst, n, /*is_and=*/true);
}

KernelResult
BaselineEngine::logicalOp(CoreId core, Addr a, Addr b, Addr dst,
                          std::size_t n, bool is_and)
{
    CoreCostModel cost(coreParams_);
    std::vector<std::uint8_t> ba(vectorBytes_), bb(vectorBytes_);
    std::uint64_t alu = 0;
    for (std::size_t off = 0; off < n; off += vectorBytes_) {
        load(cost, core, a + off, ba.data());
        load(cost, core, b + off, bb.data());
        for (std::size_t i = 0; i < vectorBytes_; ++i)
            ba[i] = is_and ? (ba[i] & bb[i]) : (ba[i] | bb[i]);
        store(cost, core, dst + off, ba.data());
        cost.addInstrs(1 + coreParams_.loopOverheadInstrs);
        ++alu;
    }
    if (energy_) {
        energy_->chargeInstructions(alu * coreParams_.loopOverheadInstrs);
        if (vectorBytes_ > 8)
            energy_->chargeVectorInstructions(alu);
        else
            energy_->chargeInstructions(alu);
    }

    KernelResult res;
    res.cycles = cost.cycles();
    res.instructions = cost.instructions() +
        alu * coreParams_.loopOverheadInstrs;
    res.blockOps = divCeil(n, kBlockSize);
    return res;
}

KernelResult
BaselineEngine::run(BulkKernel k, CoreId core, Addr a, Addr b, Addr dst,
                    std::size_t n)
{
    switch (k) {
      case BulkKernel::Copy: return copy(core, a, dst, n);
      case BulkKernel::Compare: return compare(core, a, b, n);
      case BulkKernel::Search: return search(core, a, b, n);
      case BulkKernel::LogicalOr: return logicalOr(core, a, b, dst, n);
    }
    CC_PANIC("bad kernel");
}

CcEngine::CcEngine(cache::Hierarchy &hier, cc::CcController &ctrl,
                   energy::EnergyModel *energy, StatRegistry *stats)
    : hier_(hier), ctrl_(ctrl), energy_(energy), stats_(stats)
{
}

KernelResult
CcEngine::copy(CoreId core, Addr src, Addr dst, std::size_t n)
{
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += kChunk) {
        std::size_t len = std::min(kChunk, n - off);
        instrs.push_back(
            cc::CcInstruction::copy(src + off, dst + off, len));
    }
    KernelResult res;
    auto rs = ctrl_.executeStream(core, instrs, &res.cycles);
    res.instructions = instrs.size();
    for (const auto &r : rs)
        res.blockOps += r.blockOps;
    return res;
}

KernelResult
CcEngine::buz(CoreId core, Addr dst, std::size_t n)
{
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += kChunk)
        instrs.push_back(
            cc::CcInstruction::buz(dst + off, std::min(kChunk, n - off)));
    KernelResult res;
    auto rs = ctrl_.executeStream(core, instrs, &res.cycles);
    res.instructions = instrs.size();
    for (const auto &r : rs)
        res.blockOps += r.blockOps;
    return res;
}

KernelResult
CcEngine::compare(CoreId core, Addr a, Addr b, std::size_t n)
{
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += cc::kMaxCmpBytes) {
        std::size_t len = std::min(cc::kMaxCmpBytes, n - off);
        instrs.push_back(cc::CcInstruction::cmp(a + off, b + off, len));
    }
    KernelResult res;
    auto rs = ctrl_.executeStream(core, instrs, &res.cycles);
    res.instructions = instrs.size();
    bool equal = true;
    for (std::size_t i = 0; i < rs.size(); ++i) {
        res.blockOps += rs[i].blockOps;
        std::size_t len = instrs[i].size;
        std::uint64_t full = len / 8 == 64
            ? ~std::uint64_t{0}
            : (std::uint64_t{1} << (len / 8)) - 1;
        equal &= (rs[i].result & full) == full;
    }
    res.value = equal ? 1 : 0;
    return res;
}

KernelResult
CcEngine::search(CoreId core, Addr data, Addr key, std::size_t n)
{
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += cc::kMaxCmpBytes) {
        std::size_t len = std::min(cc::kMaxCmpBytes, n - off);
        instrs.push_back(cc::CcInstruction::search(data + off, key, len));
    }
    KernelResult res;
    auto rs = ctrl_.executeStream(core, instrs, &res.cycles);
    std::uint64_t matches = 0;
    for (std::size_t i = 0; i < rs.size(); ++i) {
        res.blockOps += rs[i].blockOps;
        // Post-mask instruction (Section VI-B): per-block match when all
        // eight word bits are set.
        for (std::size_t blk = 0; blk < instrs[i].size / kBlockSize;
             ++blk) {
            std::uint64_t bits = (rs[i].result >> (blk * 8)) & 0xff;
            matches += bits == 0xff ? 1 : 0;
        }
        res.instructions += 2;  // the search plus its mask instruction
        if (energy_)
            energy_->chargeInstructions(1);
    }
    res.value = matches;
    return res;
}

KernelResult
CcEngine::logicalOr(CoreId core, Addr a, Addr b, Addr dst, std::size_t n)
{
    std::vector<cc::CcInstruction> instrs;
    for (std::size_t off = 0; off < n; off += kChunk) {
        std::size_t len = std::min(kChunk, n - off);
        instrs.push_back(cc::CcInstruction::logicalOr(a + off, b + off,
                                                      dst + off, len));
    }
    KernelResult res;
    auto rs = ctrl_.executeStream(core, instrs, &res.cycles);
    res.instructions = instrs.size();
    for (const auto &r : rs)
        res.blockOps += r.blockOps;
    return res;
}

KernelResult
CcEngine::run(BulkKernel k, CoreId core, Addr a, Addr b, Addr dst,
              std::size_t n)
{
    switch (k) {
      case BulkKernel::Copy: return copy(core, a, dst, n);
      case BulkKernel::Compare: return compare(core, a, b, n);
      case BulkKernel::Search: return search(core, a, b, n);
      case BulkKernel::LogicalOr: return logicalOr(core, a, b, dst, n);
    }
    CC_PANIC("bad kernel");
}

} // namespace ccache::sim
