#include "sim/system.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::sim {

namespace {

/** $CCACHE_VERIFY_COHERENCE=1 forces the checker on (CI sets it to run
 *  the whole test suite and bench catalog under continuous audit). */
bool
envForcesChecker()
{
    const char *env = std::getenv("CCACHE_VERIFY_COHERENCE");
    return env && env[0] == '1';
}

} // namespace

System::System(const SystemConfig &config)
    : config_(config),
      energy_(std::make_unique<energy::EnergyModel>(config.energy)),
      hier_(std::make_unique<cache::Hierarchy>(config.hierarchy,
                                               energy_.get(), &stats_)),
      cc_(std::make_unique<cc::CcController>(*hier_, energy_.get(),
                                             &stats_, config.cc)),
      scalar_(std::make_unique<BaselineEngine>(*hier_, energy_.get(),
                                               &stats_, 8, config.core)),
      simd_(std::make_unique<BaselineEngine>(*hier_, energy_.get(),
                                             &stats_, 32, config.core)),
      ccEngine_(std::make_unique<CcEngine>(*hier_, *cc_, energy_.get(),
                                           &stats_)),
      clocks_(config.hierarchy.cores, 0)
{
    trace_.setClock([this](int core) {
        if (core < 0 || static_cast<std::size_t>(core) >= clocks_.size())
            return elapsed();
        return clocks_[static_cast<std::size_t>(core)];
    });
    hier_->setTraceSink(&trace_);
    cc_->setTraceSink(&trace_);

    if (config.verify.coherenceChecker || envForcesChecker()) {
        checker_ = std::make_unique<verify::CoherenceChecker>(
            *hier_, config.verify.checker);
        hier_->setChecker(checker_.get());
        cc_->setChecker(checker_.get());
    }
    if (config.verify.watchdog) {
        watchdog_ = std::make_unique<verify::ProgressWatchdog>(
            config.verify.watchdogParams);
        watchdog_->setContextProvider([this]() {
            Json ctx = Json::object();
            Json dirs = Json::array();
            for (unsigned s = 0; s < config_.hierarchy.ring.nodes; ++s)
                dirs.push(static_cast<std::uint64_t>(
                    hier_->directory(s).trackedBlocks()));
            ctx["directory_tracked_blocks"] = std::move(dirs);
            ctx["noc_messages"] = hier_->ring().messages();
            ctx["elapsed_cycles"] = elapsed();
            return ctx;
        });
        hier_->setWatchdog(watchdog_.get());
        cc_->setWatchdog(watchdog_.get());
    }
}

void
System::load(Addr addr, const void *data, std::size_t len)
{
    hier_->memory().writeBytes(
        addr, static_cast<const std::uint8_t *>(data), len);
    // Keep any cached copies coherent with the new backing data so a
    // reload between experiment phases behaves like a fresh machine.
    Addr first = alignDown(addr, kBlockSize);
    Addr last = alignDown(addr + len - 1, kBlockSize);
    for (Addr blk = first; blk <= last; blk += kBlockSize)
        hier_->debugWrite(blk, hier_->memory().readBlock(blk));
}

std::vector<std::uint8_t>
System::dump(Addr addr, std::size_t len)
{
    std::vector<std::uint8_t> out(len);
    Addr first = alignDown(addr, kBlockSize);
    Addr last = alignDown(addr + len - 1, kBlockSize);
    std::size_t written = 0;
    for (Addr blk = first; blk <= last; blk += kBlockSize) {
        Block b = hier_->debugRead(blk);
        std::size_t lo = blk < addr ? addr - blk : 0;
        std::size_t hi = std::min<std::size_t>(kBlockSize,
                                               addr + len - blk);
        std::memcpy(out.data() + written, b.data() + lo, hi - lo);
        written += hi - lo;
    }
    return out;
}

void
System::warm(CacheLevel level, CoreId core, Addr addr, std::size_t len)
{
    // Warm without perturbing the experiment's metrics: stash, act,
    // restore energy is unnecessary since we snapshot via resetMetrics in
    // benches; still, warming should not advance core clocks.
    Addr first = alignDown(addr, kBlockSize);
    Addr last = alignDown(addr + len - 1, kBlockSize);
    for (Addr blk = first; blk <= last; blk += kBlockSize) {
        if (level == CacheLevel::L3) {
            hier_->fetchToLevel(core, blk, CacheLevel::L3, false);
        } else {
            hier_->read(core, blk, nullptr,
                        level == CacheLevel::L1 ? CacheLevel::L1
                                                : CacheLevel::L2);
        }
    }
}

void
System::advance(CoreId core, Cycles cycles)
{
    CC_ASSERT(core < clocks_.size(), "core ", core, " out of range");
    clocks_[core] += cycles;
}

Cycles
System::elapsed() const
{
    Cycles max = 0;
    for (Cycles c : clocks_)
        max = std::max(max, c);
    return max;
}

energy::EnergyTotals
System::totals() const
{
    // Attribute static power to the cores that actually ran, plus their
    // share of the shared uncore (caches + ring).
    unsigned active = 0;
    for (Cycles c : clocks_)
        active += c > 0 ? 1 : 0;
    active = std::max(active, 1u);
    double uncore_share =
        static_cast<double>(active) / static_cast<double>(clocks_.size());
    return energy_->totals(elapsed(), active, uncore_share);
}

void
System::resetMetrics()
{
    std::fill(clocks_.begin(), clocks_.end(), 0);
    stats_.resetAll();
    energy_->reset();
    trace_.clear();
}

} // namespace ccache::sim
