#include "sim/bulk_ops.hh"

namespace ccache::sim {

const char *
toString(BulkKernel k)
{
    switch (k) {
      case BulkKernel::Copy: return "copy";
      case BulkKernel::Compare: return "compare";
      case BulkKernel::Search: return "search";
      case BulkKernel::LogicalOr: return "logical";
    }
    return "?";
}

} // namespace ccache::sim
