#include "sim/trace.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace ccache::sim {

namespace {

/** Parse a hex (0x...) or decimal integer; false on garbage. */
bool
parseNumber(const std::string &token, std::uint64_t &out)
{
    if (token.empty())
        return false;
    try {
        std::size_t consumed = 0;
        out = std::stoull(token, &consumed, 0);
        return consumed == token.size();
    } catch (const std::exception &) {
        return false;
    }
}

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line.substr(0, line.find('#')));
    std::string tok;
    while (is >> tok)
        tokens.push_back(tok);
    return tokens;
}

/** Build a CC instruction from mnemonic + numeric operands. */
bool
buildCcInstruction(const std::string &mnemonic,
                   const std::vector<std::uint64_t> &args,
                   cc::CcInstruction &out, std::string &error)
{
    using cc::CcInstruction;

    auto need = [&](std::size_t n) {
        if (args.size() != n) {
            error = mnemonic + " expects " + std::to_string(n - 1) +
                " operands plus a size";
            return false;
        }
        return true;
    };

    if (mnemonic == "cc_copy") {
        if (!need(3))
            return false;
        out = CcInstruction::copy(args[0], args[1], args[2]);
    } else if (mnemonic == "cc_buz") {
        if (!need(2))
            return false;
        out = CcInstruction::buz(args[0], args[1]);
    } else if (mnemonic == "cc_cmp") {
        if (!need(3))
            return false;
        out = CcInstruction::cmp(args[0], args[1], args[2]);
    } else if (mnemonic == "cc_search") {
        if (!need(3))
            return false;
        out = CcInstruction::search(args[0], args[1], args[2]);
    } else if (mnemonic == "cc_and") {
        if (!need(4))
            return false;
        out = CcInstruction::logicalAnd(args[0], args[1], args[2],
                                        args[3]);
    } else if (mnemonic == "cc_or") {
        if (!need(4))
            return false;
        out = CcInstruction::logicalOr(args[0], args[1], args[2], args[3]);
    } else if (mnemonic == "cc_xor") {
        if (!need(4))
            return false;
        out = CcInstruction::logicalXor(args[0], args[1], args[2],
                                        args[3]);
    } else if (mnemonic == "cc_not") {
        if (!need(3))
            return false;
        out = CcInstruction::logicalNot(args[0], args[1], args[2]);
    } else if (mnemonic == "cc_clmul64" || mnemonic == "cc_clmul128" ||
               mnemonic == "cc_clmul256") {
        if (!need(4))
            return false;
        std::size_t width = std::stoul(mnemonic.substr(8));
        out = CcInstruction::clmul(args[0], args[1], args[2], args[3],
                                   width);
    } else {
        error = "unknown mnemonic '" + mnemonic + "'";
        return false;
    }

    try {
        out.validate();
    } catch (const FatalError &e) {
        error = e.what();
        return false;
    }
    return true;
}

} // namespace

namespace {

/**
 * Bounded line read: up to kMaxTraceLineBytes land in @p line; an
 * over-long line is consumed to its newline with a fixed-size buffer
 * (never an unbounded std::string) and flagged via @p oversized.
 * Returns false at end of stream with nothing extracted.
 */
bool
getlineBounded(std::istream &in, std::string &line, bool &oversized)
{
    line.clear();
    oversized = false;
    char buf[kMaxTraceLineBytes + 1];
    while (true) {
        in.getline(buf, sizeof buf);
        std::streamsize got = in.gcount();
        if (in.fail() && !in.eof() && got == sizeof buf - 1) {
            // Buffer filled without a newline: the line is oversized.
            // Keep draining it in buffer-sized chunks.
            oversized = true;
            if (line.size() < kMaxTraceLineBytes)
                line.append(buf, kMaxTraceLineBytes - line.size());
            in.clear();
            continue;
        }
        if (got == 0 && !in.good())
            return !line.empty() || oversized;
        if (!oversized)
            line.append(buf, static_cast<std::size_t>(
                                 got > 0 && in.good() ? got - 1 : got));
        return true;
    }
}

} // namespace

ParsedTrace
parseTrace(std::istream &in)
{
    ParsedTrace parsed;
    std::string line;
    std::size_t lineno = 0;
    bool oversized = false;

    while (getlineBounded(in, line, oversized)) {
        ++lineno;
        if (oversized) {
            parsed.errors.push_back(
                {lineno, line.substr(0, 64) + "...",
                 "oversized line (> " +
                     std::to_string(kMaxTraceLineBytes) +
                     " bytes) skipped"});
            continue;
        }
        auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        auto fail = [&](const std::string &msg) {
            parsed.errors.push_back({lineno, line, msg});
        };

        TraceRecord rec;
        const std::string &kind = tokens[0];
        if (kind == "R" || kind == "W") {
            if (tokens.size() != 3) {
                fail("R/W records need <core> <addr>");
                continue;
            }
            std::uint64_t core = 0, addr = 0;
            if (!parseNumber(tokens[1], core) ||
                !parseNumber(tokens[2], addr)) {
                fail("bad core or address");
                continue;
            }
            rec.kind = kind == "R" ? TraceRecord::Kind::Read
                                   : TraceRecord::Kind::Write;
            rec.core = static_cast<CoreId>(core);
            rec.addr = addr;
        } else if (kind == "CC") {
            if (tokens.size() < 4) {
                fail("CC records need <core> <mnemonic> <args...>");
                continue;
            }
            std::uint64_t core = 0;
            if (!parseNumber(tokens[1], core)) {
                fail("bad core");
                continue;
            }
            std::vector<std::uint64_t> args;
            bool ok = true;
            for (std::size_t t = 3; t < tokens.size(); ++t) {
                std::uint64_t v = 0;
                ok &= parseNumber(tokens[t], v);
                args.push_back(v);
            }
            if (!ok) {
                fail("bad numeric operand");
                continue;
            }
            std::string error;
            if (!buildCcInstruction(tokens[2], args, rec.instr, error)) {
                fail(error);
                continue;
            }
            rec.kind = TraceRecord::Kind::CcOp;
            rec.core = static_cast<CoreId>(core);
        } else {
            fail("unknown record kind '" + kind + "'");
            continue;
        }
        parsed.records.push_back(rec);
    }
    return parsed;
}

ParsedTrace
parseTrace(const std::string &text)
{
    std::istringstream is(text);
    return parseTrace(is);
}

ParsedTrace
parseTraceFile(const std::string &path)
{
    if (path == "-")
        return parseTrace(std::cin);
    std::ifstream in(path);
    if (!in) {
        ParsedTrace parsed;
        parsed.errors.push_back({0, path, "cannot open trace file"});
        return parsed;
    }
    return parseTrace(in);
}

void
replayRecord(System &sys, const TraceRecord &rec, TraceReplayResult &res)
{
    auto &hier = sys.hierarchy();
    switch (rec.kind) {
      case TraceRecord::Kind::Read: {
        auto r = hier.read(rec.core, rec.addr);
        sys.advance(rec.core, r.latency);
        ++res.reads;
        res.l1Misses += r.servedBy != cache::ServedBy::L1;
        res.memAccesses += r.servedBy == cache::ServedBy::Memory;
        break;
      }
      case TraceRecord::Kind::Write: {
        auto r = hier.write(rec.core, rec.addr);
        sys.advance(rec.core, r.latency);
        ++res.writes;
        res.l1Misses += r.servedBy != cache::ServedBy::L1;
        res.memAccesses += r.servedBy == cache::ServedBy::Memory;
        break;
      }
      case TraceRecord::Kind::CcOp: {
        auto r = sys.cc().execute(rec.core, rec.instr);
        sys.advance(rec.core, r.latency);
        ++res.ccInstructions;
        res.ccBlockOps += r.blockOps;
        res.resultChecksum ^= r.result;
        break;
      }
    }
}

TraceReplayResult
replayTrace(System &sys, const ParsedTrace &trace)
{
    TraceReplayResult res;
    for (const TraceRecord &rec : trace.records)
        replayRecord(sys, rec, res);
    res.cycles = sys.elapsed();
    return res;
}

std::string
formatReport(System &sys, const TraceReplayResult &result)
{
    std::ostringstream os;
    os << "---------- trace replay ----------\n"
       << "reads            " << result.reads << "\n"
       << "writes           " << result.writes << "\n"
       << "cc_instructions  " << result.ccInstructions << "\n"
       << "cc_block_ops     " << result.ccBlockOps << "\n"
       << "l1_misses        " << result.l1Misses << "\n"
       << "mem_accesses     " << result.memAccesses << "\n"
       << "cycles           " << result.cycles << "\n"
       << "result_checksum  0x" << std::hex << result.resultChecksum
       << std::dec << "\n"
       << "---------- energy ----------------\n"
       << sys.energy().report()
       << "---------- hierarchy -------------\n"
       << sys.stats().dump();
    return os.str();
}

} // namespace ccache::sim
