/**
 * @file
 * Trace-driven simulation: a small text format for replaying memory and
 * Compute Cache activity on the simulated machine, in the spirit of the
 * trace players that ship with gem5/Sniper-class simulators.
 *
 * Format (one record per line, '#' starts a comment):
 *
 *     R  <core> <addr>                        # block read
 *     W  <core> <addr>                        # block write
 *     CC <core> <mnemonic> <operands...> <n>  # Table II instruction
 *
 * Mnemonics follow Table II: cc_copy a b, cc_buz a, cc_cmp a b,
 * cc_search a k, cc_and/or/xor a b c, cc_not a b, cc_clmul64/128/256
 * a b c. Addresses are hex (0x...) or decimal; <n> is the vector size
 * in bytes.
 */

#ifndef CCACHE_SIM_TRACE_HH
#define CCACHE_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "cc/isa.hh"
#include "sim/system.hh"

namespace ccache::sim {

/** One parsed trace record. */
struct TraceRecord
{
    enum class Kind { Read, Write, CcOp };

    Kind kind = Kind::Read;
    CoreId core = 0;
    Addr addr = 0;                 ///< for Read/Write
    cc::CcInstruction instr;       ///< for CcOp
};

/** Parse errors carry the offending line for diagnostics. */
struct TraceParseError
{
    std::size_t lineNumber;
    std::string line;
    std::string message;
};

/** Parsed trace plus any per-line problems. */
struct ParsedTrace
{
    std::vector<TraceRecord> records;
    std::vector<TraceParseError> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse a trace from text. Malformed lines are reported, not fatal. */
ParsedTrace parseTrace(std::istream &in);
ParsedTrace parseTrace(const std::string &text);

/** Outcome of replaying a trace. */
struct TraceReplayResult
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ccInstructions = 0;
    Cycles cycles = 0;     ///< per-core makespan

    /** XOR of cmp/search result masks, as a replay checksum. */
    std::uint64_t resultChecksum = 0;
};

/**
 * Replay a parsed trace on @p sys. Each record's latency accrues to its
 * core's clock; the returned cycle count is the slowest core.
 */
TraceReplayResult replayTrace(System &sys, const ParsedTrace &trace);

/** gem5-style end-of-run report: stats + energy, ready to print. */
std::string formatReport(System &sys, const TraceReplayResult &result);

} // namespace ccache::sim

#endif // CCACHE_SIM_TRACE_HH
