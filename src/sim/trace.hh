/**
 * @file
 * Trace-driven simulation: a small text format for replaying memory and
 * Compute Cache activity on the simulated machine, in the spirit of the
 * trace players that ship with gem5/Sniper-class simulators.
 *
 * Format (one record per line, '#' starts a comment):
 *
 *     R  <core> <addr>                        # block read
 *     W  <core> <addr>                        # block write
 *     CC <core> <mnemonic> <operands...> <n>  # Table II instruction
 *
 * Mnemonics follow Table II: cc_copy a b, cc_buz a, cc_cmp a b,
 * cc_search a k, cc_and/or/xor a b c, cc_not a b, cc_clmul64/128/256
 * a b c. Addresses are hex (0x...) or decimal; <n> is the vector size
 * in bytes.
 */

#ifndef CCACHE_SIM_TRACE_HH
#define CCACHE_SIM_TRACE_HH

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "cc/isa.hh"
#include "sim/system.hh"

namespace ccache::sim {

/** One parsed trace record. */
struct TraceRecord
{
    enum class Kind { Read, Write, CcOp };

    Kind kind = Kind::Read;
    CoreId core = 0;
    Addr addr = 0;                 ///< for Read/Write
    cc::CcInstruction instr;       ///< for CcOp
};

/** Parse errors carry the offending line for diagnostics. */
struct TraceParseError
{
    std::size_t lineNumber;
    std::string line;
    std::string message;
};

/** Parsed trace plus any per-line problems. */
struct ParsedTrace
{
    std::vector<TraceRecord> records;
    std::vector<TraceParseError> errors;

    bool ok() const { return errors.empty(); }
};

/** Longest accepted trace line. Longer lines are skipped and reported
 *  (one error record each) without ever buffering the whole line, so a
 *  corrupt multi-gigabyte line cannot balloon memory. */
inline constexpr std::size_t kMaxTraceLineBytes = 4096;

/** Parse a trace from text. Malformed lines are reported, not fatal. */
ParsedTrace parseTrace(std::istream &in);
ParsedTrace parseTrace(const std::string &text);

/**
 * Parse a trace file; "-" reads stdin (streamed, so `generator |
 * cc_trace -` works on traces far larger than memory would allow a
 * temp file for). An unopenable path yields a single pseudo-error at
 * line 0.
 */
ParsedTrace parseTraceFile(const std::string &path);

/** Outcome of replaying a trace. */
struct TraceReplayResult
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ccInstructions = 0;
    Cycles cycles = 0;     ///< per-core makespan

    /** Demand (R/W) accesses by where the hierarchy served them:
     *  beyond-L1 and all-the-way-to-memory counts, for miss rates. @{ */
    std::uint64_t l1Misses = 0;
    std::uint64_t memAccesses = 0;
    /** @} */

    /** CC block ops executed (sub-array work units, DESIGN.md §13). */
    std::uint64_t ccBlockOps = 0;

    /** XOR of cmp/search result masks, as a replay checksum. */
    std::uint64_t resultChecksum = 0;

    /** Memory-served fraction of demand accesses. */
    double memMissRate() const
    {
        std::uint64_t a = reads + writes;
        return a ? static_cast<double>(memAccesses) /
                static_cast<double>(a) : 0.0;
    }

    /** CC block ops per kilocycle (CC-op throughput). */
    double ccOpsPerKCycle() const
    {
        return cycles ? 1000.0 * static_cast<double>(ccBlockOps) /
                static_cast<double>(cycles) : 0.0;
    }
};

/**
 * Replay one record on @p sys, accruing its latency to its core's
 * clock and its counts into @p res (res.cycles is NOT updated — that
 * is the caller's end-of-run sys.elapsed() snapshot). The sampled
 * runner replays interval slices through this same path, so full and
 * sampled runs cannot drift apart (DESIGN.md §16).
 */
void replayRecord(System &sys, const TraceRecord &rec,
                  TraceReplayResult &res);

/**
 * Replay a parsed trace on @p sys. Each record's latency accrues to its
 * core's clock; the returned cycle count is the slowest core.
 */
TraceReplayResult replayTrace(System &sys, const ParsedTrace &trace);

/** gem5-style end-of-run report: stats + energy, ready to print. */
std::string formatReport(System &sys, const TraceReplayResult &result);

} // namespace ccache::sim

#endif // CCACHE_SIM_TRACE_HH
