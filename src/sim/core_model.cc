#include "sim/core_model.hh"

#include <algorithm>

namespace ccache::sim {

void
CoreCostModel::addMemAccess(Cycles lat, Cycles l1_latency)
{
    ++memOps_;
    if (lat <= l1_latency) {
        ++hitOps_;
    } else {
        missLatencySum_ += lat;
        maxMissLatency_ = std::max(maxMissLatency_, lat);
    }
}

void
CoreCostModel::addDependentMemAccess(Cycles lat)
{
    ++memOps_;
    serialLatency_ += lat;
}

void
CoreCostModel::addBranches(std::uint64_t n, double rate)
{
    instrs_ += n;
    serialLatency_ += static_cast<Cycles>(
        static_cast<double>(n) * rate *
        static_cast<double>(params_.branchMispredictPenalty));
}

Cycles
CoreCostModel::cycles() const
{
    Cycles issue_bound = (instrs_ + memOps_ + params_.issueWidth - 1) /
        params_.issueWidth;
    Cycles hit_time = hitOps_ / std::max(1u, params_.memIssueWidth);
    Cycles miss_time = std::max(
        maxMissLatency_, missLatencySum_ / std::max(1u, params_.mshrs));
    Cycles mem_bound = hit_time + miss_time + serialLatency_;
    return std::max<Cycles>(1, std::max(issue_bound, mem_bound));
}

void
CoreCostModel::reset()
{
    instrs_ = 0;
    memOps_ = 0;
    hitOps_ = 0;
    missLatencySum_ = 0;
    maxMissLatency_ = 0;
    serialLatency_ = 0;
}

} // namespace ccache::sim
