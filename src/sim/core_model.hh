/**
 * @file
 * Analytical out-of-order core cost model.
 *
 * The paper evaluates on Sniper's interval-style core model; this module
 * reproduces that granularity: a kernel's cycle count is the maximum of
 * its issue-bound time (instructions / issue width) and its memory-bound
 * time (access latencies overlapped up to the MSHR-limited memory-level
 * parallelism), which is exactly the trade-off the Figure 3/7 baselines
 * exercise.
 */

#ifndef CCACHE_SIM_CORE_MODEL_HH
#define CCACHE_SIM_CORE_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ccache::sim {

/** Core parameters (Table IV: 2.66 GHz OoO, 48 LQ / 32 SQ). */
struct CoreParams
{
    unsigned issueWidth = 4;

    /** Memory ops issued per cycle when hitting in L1. */
    unsigned memIssueWidth = 2;

    /** Concurrent outstanding misses. The effective MLP of the paper's
     *  Sniper baseline on L3-resident streams is low (the copy
     *  decomposition in Section VI-D implies largely serialized misses);
     *  2 reproduces the reported Base_32 throughput shape. */
    unsigned mshrs = 2;

    /** Loop bookkeeping instructions per vector chunk (index update,
     *  bounds check, branch). */
    unsigned loopOverheadInstrs = 3;

    /** Pipeline refill cost of one branch misprediction (SandyBridge-
     *  class front end). */
    Cycles branchMispredictPenalty = 15;
};

/** Accumulates one kernel's instruction and memory activity. */
class CoreCostModel
{
  public:
    explicit CoreCostModel(const CoreParams &params = CoreParams{})
        : params_(params)
    {
    }

    const CoreParams &params() const { return params_; }

    /** Record @p n non-memory instructions. */
    void addInstrs(std::uint64_t n) { instrs_ += n; }

    /** Record one memory access of latency @p lat (from the hierarchy).
     *  Accesses at or under @p l1_latency count as pipelined L1 hits. */
    void addMemAccess(Cycles lat, Cycles l1_latency = 5);

    /** Record a memory access on a serially-dependent chain (pointer
     *  chasing, binary-search probes): no MLP overlap is possible. */
    void addDependentMemAccess(Cycles lat);

    /** Record @p n data-dependent branches with misprediction
     *  probability @p rate (binary search mispredicts ~50%). */
    void addBranches(std::uint64_t n, double rate);

    std::uint64_t instructions() const { return instrs_ + memOps_; }

    /**
     * Kernel cycles: max of the issue-bound and memory-bound components.
     * Misses overlap up to `mshrs` deep; L1 hits stream at
     * memIssueWidth per cycle.
     */
    Cycles cycles() const;

    void reset();

  private:
    CoreParams params_;
    std::uint64_t instrs_ = 0;
    std::uint64_t memOps_ = 0;
    std::uint64_t hitOps_ = 0;
    Cycles missLatencySum_ = 0;
    Cycles maxMissLatency_ = 0;
    Cycles serialLatency_ = 0;
};

} // namespace ccache::sim

#endif // CCACHE_SIM_CORE_MODEL_HH
