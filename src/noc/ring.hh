/**
 * @file
 * Ring interconnect model (Table IV: 3-cycle hop latency, 256-bit links).
 *
 * The ring connects the eight cores (each with its private L1/L2 and its
 * local L3 slice) in the SandyBridge-like floorplan of Figure 1(a).
 * Messages are either control (8 bytes: requests, acks, invalidations) or
 * data (8-byte header + 64-byte block). The model charges per-hop latency
 * and per-flit-hop energy, and tracks link utilization for the bandwidth
 * statistics.
 */

#ifndef CCACHE_NOC_RING_HH
#define CCACHE_NOC_RING_HH

#include <cstdint>

#include "common/event_trace.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"

namespace ccache::verify {
class ProgressWatchdog;
} // namespace ccache::verify

namespace ccache::noc {

/** Message classes carried on the ring. */
enum class MsgClass {
    Control,    ///< request / ack / invalidate: one 8-byte flit
    Data,       ///< cache block transfer: header + 64 bytes
};

/** Size in bytes of a message of class @p cls. */
std::size_t messageBytes(MsgClass cls);

/** Ring configuration. */
struct RingParams
{
    unsigned nodes = 8;        ///< ring stops (core + L3 slice per stop)
    Cycles hopLatency = 3;     ///< Table IV
    unsigned linkBytes = 32;   ///< 256-bit links

    /** Every core <-> slice message crosses at least this many ring
     *  segments: even the local slice sits behind the core's ring
     *  interface (SandyBridge floorplan). */
    unsigned minHops = 1;
};

/** Bidirectional ring: traffic takes the shorter direction. */
class Ring
{
  public:
    Ring(const RingParams &params, energy::EnergyModel *energy,
         StatRegistry *stats);

    const RingParams &params() const { return params_; }

    /** Attach (or detach with nullptr) a timeline event sink; each
     *  message becomes one event on its source stop's NoC track. */
    void setTraceSink(EventTrace *trace) { trace_ = trace; }

    /** Count every message against @p watchdog's per-transaction ring
     *  ceiling (nullptr detaches). */
    void setWatchdog(verify::ProgressWatchdog *watchdog)
    {
        watchdog_ = watchdog;
    }

    /** Hops between two stops using the shorter direction. */
    unsigned distance(unsigned src, unsigned dst) const;

    /**
     * Send one message; returns its network latency in cycles and charges
     * NoC energy. Same-stop traffic (core to its local slice) is free.
     */
    Cycles send(unsigned src, unsigned dst, MsgClass cls);

    /** Total messages and flit-hops moved, for stats. @{ */
    std::uint64_t messages() const { return messages_; }
    std::uint64_t flitHops() const { return flitHops_; }
    /** @} */

  private:
    RingParams params_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
    /** Pre-registered counters: send() is called once per coherence hop,
     *  so it must not re-resolve dotted stat names. Null w/o registry. @{ */
    StatCounter *messagesStat_ = nullptr;
    StatCounter *flitHopsStat_ = nullptr;
    /** @} */
    EventTrace *trace_ = nullptr;
    verify::ProgressWatchdog *watchdog_ = nullptr;
    std::uint64_t messages_ = 0;
    std::uint64_t flitHops_ = 0;
};

} // namespace ccache::noc

#endif // CCACHE_NOC_RING_HH
