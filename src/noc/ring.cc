#include "noc/ring.hh"

#include <algorithm>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "verify/watchdog.hh"

namespace ccache::noc {

std::size_t
messageBytes(MsgClass cls)
{
    switch (cls) {
      case MsgClass::Control: return 8;
      case MsgClass::Data: return 8 + kBlockSize;
    }
    return 8;
}

Ring::Ring(const RingParams &params, energy::EnergyModel *energy,
           StatRegistry *stats)
    : params_(params), energy_(energy), stats_(stats)
{
    if (params_.nodes == 0)
        CC_FATAL("ring needs at least one node");
    if (stats_) {
        messagesStat_ = &stats_->counter("noc.messages");
        flitHopsStat_ = &stats_->counter("noc.flit_hops");
    }
}

unsigned
Ring::distance(unsigned src, unsigned dst) const
{
    CC_ASSERT(src < params_.nodes && dst < params_.nodes,
              "ring stop out of range: ", src, " -> ", dst);
    unsigned fwd = (dst + params_.nodes - src) % params_.nodes;
    unsigned bwd = params_.nodes - fwd;
    return std::min(fwd, bwd == params_.nodes ? 0 : bwd);
}

Cycles
Ring::send(unsigned src, unsigned dst, MsgClass cls)
{
    unsigned hops = std::max(distance(src, dst), params_.minHops);
    std::size_t bytes = messageBytes(cls);
    ++messages_;
    if (watchdog_)
        watchdog_->noteRingMessage(src, dst);

    if (hops == 0)
        return 0;

    std::uint64_t flits = divCeil(bytes, 8);
    flitHops_ += flits * hops;

    if (energy_)
        energy_->chargeNoc(bytes, hops);
    if (messagesStat_) {
        messagesStat_->inc();
        flitHopsStat_->inc(flits * hops);
    }

    // Wormhole-style: head latency plus serialization of the payload over
    // the 256-bit link.
    Cycles serialization = divCeil(bytes, params_.linkBytes);
    Cycles latency = params_.hopLatency * hops + serialization;

    if (trace_ && trace_->enabled()) {
        Json args = Json::object();
        args["src"] = src;
        args["dst"] = dst;
        args["hops"] = hops;
        args["bytes"] = static_cast<std::uint64_t>(bytes);
        int track = EventTrace::kNocTrackBase + static_cast<int>(src);
        trace_->complete(tracecat::kNoc,
                         cls == MsgClass::Data ? "noc.data" : "noc.ctl",
                         track, trace_->now(static_cast<int>(src)), latency,
                         std::move(args));
    }
    return latency;
}

} // namespace ccache::noc
