#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace ccache {

StatHistogram::StatHistogram(std::string name, double bucket_width,
                             std::size_t nbuckets, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc)),
      bucketWidth_(bucket_width), buckets_(nbuckets + 1, 0)
{
    CC_ASSERT(bucket_width > 0.0, "bucket width must be positive");
    CC_ASSERT(nbuckets > 0, "need at least one bucket");
}

void
StatHistogram::sample(double value)
{
    std::size_t idx = value < 0.0
        ? 0
        : std::min<std::size_t>(static_cast<std::size_t>(value / bucketWidth_),
                                buckets_.size() - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
StatHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

bool
StatHistogram::mergeFrom(const StatHistogram &other)
{
    if (bucketWidth_ != other.bucketWidth_ ||
        buckets_.size() != other.buckets_.size())
        return false;
    if (other.count_ == 0)
        return true;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
}

StatLogHistogram::StatLogHistogram(std::string name, std::string desc,
                                   unsigned sub_bucket_bits)
    : name_(std::move(name)), desc_(std::move(desc)),
      subBucketBits_(sub_bucket_bits)
{
    CC_ASSERT(sub_bucket_bits >= 1 && sub_bucket_bits <= 16,
              "log-histogram sub-bucket bits out of range");
}

std::size_t
StatLogHistogram::bucketIndex(std::uint64_t value) const
{
    const std::uint64_t sub = std::uint64_t{1} << subBucketBits_;
    if (value < sub)
        return static_cast<std::size_t>(value);
    unsigned msb = std::bit_width(value) - 1;   // value in [2^msb, 2^msb+1)
    unsigned octave = msb - subBucketBits_;
    return static_cast<std::size_t>(
        sub + std::uint64_t{octave} * sub + ((value >> octave) - sub));
}

std::uint64_t
StatLogHistogram::bucketLowerBound(std::size_t idx) const
{
    const std::uint64_t sub = std::uint64_t{1} << subBucketBits_;
    if (idx < sub)
        return idx;
    unsigned octave = static_cast<unsigned>(idx / sub) - 1;
    std::uint64_t offset = idx % sub;
    return (sub + offset) << octave;
}

std::uint64_t
StatLogHistogram::bucketUpperBound(std::size_t idx) const
{
    const std::uint64_t sub = std::uint64_t{1} << subBucketBits_;
    if (idx < sub)
        return idx;
    unsigned octave = static_cast<unsigned>(idx / sub) - 1;
    return bucketLowerBound(idx) + ((std::uint64_t{1} << octave) - 1);
}

void
StatLogHistogram::sample(std::uint64_t value)
{
    std::size_t idx = bucketIndex(value);
    if (idx >= buckets_.size())
        buckets_.resize(idx + 1, 0);
    ++buckets_[idx];
    ++count_;
    sum_ += static_cast<double>(value);
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
StatLogHistogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0;
}

double
StatLogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

bool
StatLogHistogram::mergeFrom(const StatLogHistogram &other)
{
    if (subBucketBits_ != other.subBucketBits_)
        return false;
    if (other.count_ == 0)
        return true;
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
}

std::uint64_t
StatLogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

StatCounter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, StatCounter(name, desc)).first;
    return it->second;
}

StatAccum &
StatRegistry::accum(const std::string &name, const std::string &desc)
{
    auto it = accums_.find(name);
    if (it == accums_.end())
        it = accums_.emplace(name, StatAccum(name, desc)).first;
    return it->second;
}

StatHistogram &
StatRegistry::histogram(const std::string &name, double bucket_width,
                        std::size_t nbuckets, const std::string &desc)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name,
                          StatHistogram(name, bucket_width, nbuckets, desc))
                 .first;
    return it->second;
}

StatLogHistogram &
StatRegistry::logHistogram(const std::string &name, const std::string &desc,
                           unsigned sub_bucket_bits)
{
    auto it = logHistograms_.find(name);
    if (it == logHistograms_.end())
        it = logHistograms_
                 .emplace(name, StatLogHistogram(name, desc, sub_bucket_bits))
                 .first;
    return it->second;
}

StatFormula &
StatRegistry::formula(const std::string &name, StatFormula::Fn fn,
                      const std::string &desc)
{
    formulas_[name] = StatFormula(name, std::move(fn), desc);
    return formulas_[name];
}

StatGroup
StatRegistry::group(const std::string &prefix)
{
    return StatGroup(*this, prefix);
}

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatRegistry::accumValue(const std::string &name) const
{
    auto it = accums_.find(name);
    return it == accums_.end() ? 0.0 : it->second.value();
}

double
StatRegistry::formulaValue(const std::string &name) const
{
    auto it = formulas_.find(name);
    return it == formulas_.end() ? 0.0 : it->second.value();
}

const StatHistogram *
StatRegistry::histogramAt(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

const StatLogHistogram *
StatRegistry::logHistogramAt(const std::string &name) const
{
    auto it = logHistograms_.find(name);
    return it == logHistograms_.end() ? nullptr : &it->second;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accums_)
        a.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
    for (auto &[name, h] : logHistograms_)
        h.reset();
}

void
StatRegistry::mergeFrom(const StatRegistry &other)
{
    for (const auto &[name, c] : other.counters_)
        counter(name, c.description()).inc(c.value());
    for (const auto &[name, a] : other.accums_)
        accum(name, a.description()).add(a.value());
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
            continue;
        }
        if (!it->second.mergeFrom(h))
            CC_WARN("stat histogram '", name,
                    "' has mismatched bucket geometry; merge skipped");
    }
    for (const auto &[name, h] : other.logHistograms_) {
        auto it = logHistograms_.find(name);
        if (it == logHistograms_.end()) {
            logHistograms_.emplace(name, h);
            continue;
        }
        if (!it->second.mergeFrom(h))
            CC_WARN("stat log-histogram '", name,
                    "' has mismatched sub-bucket resolution; merge skipped");
    }
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : accums_)
        os << name << " " << a.value() << "\n";
    for (const auto &[name, h] : histograms_)
        os << name << " count=" << h.count() << " mean=" << h.mean()
           << " min=" << h.min() << " max=" << h.max() << "\n";
    for (const auto &[name, h] : logHistograms_)
        os << name << " count=" << h.count() << " mean=" << h.mean()
           << " p50=" << h.quantile(0.50) << " p99=" << h.quantile(0.99)
           << " max=" << h.max() << "\n";
    for (const auto &[name, f] : formulas_)
        os << name << " " << f.value() << "\n";
    return os.str();
}

Json
StatRegistry::dumpJson() const
{
    Json doc = Json::object();
    doc["schema"] = "ccache-stats";
    doc["version"] = kStatsSchemaVersion;

    Json descriptions = Json::object();
    auto describe = [&](const std::string &name, const std::string &desc) {
        if (!desc.empty())
            descriptions[name] = desc;
    };

    Json counters = Json::object();
    for (const auto &[name, c] : counters_) {
        counters[name] = c.value();
        describe(name, c.description());
    }
    doc["counters"] = std::move(counters);

    Json accums = Json::object();
    for (const auto &[name, a] : accums_) {
        accums[name] = a.value();
        describe(name, a.description());
    }
    doc["accums"] = std::move(accums);

    Json formulas = Json::object();
    for (const auto &[name, f] : formulas_) {
        formulas[name] = f.value();
        describe(name, f.description());
    }
    doc["formulas"] = std::move(formulas);

    Json histograms = Json::object();
    for (const auto &[name, h] : histograms_) {
        Json entry = Json::object();
        entry["count"] = h.count();
        entry["mean"] = h.mean();
        entry["min"] = h.min();
        entry["max"] = h.max();
        entry["bucket_width"] = h.bucketWidth();
        Json buckets = Json::array();
        for (std::uint64_t b : h.buckets())
            buckets.push(b);
        entry["buckets"] = std::move(buckets);
        histograms[name] = std::move(entry);
        describe(name, h.description());
    }
    doc["histograms"] = std::move(histograms);

    Json log_histograms = Json::object();
    for (const auto &[name, h] : logHistograms_) {
        Json entry = Json::object();
        entry["count"] = h.count();
        entry["mean"] = h.mean();
        entry["min"] = h.min();
        entry["max"] = h.max();
        entry["sub_bucket_bits"] = h.subBucketBits();
        Json quantiles = Json::object();
        quantiles["p50"] = h.quantile(0.50);
        quantiles["p90"] = h.quantile(0.90);
        quantiles["p99"] = h.quantile(0.99);
        quantiles["p999"] = h.quantile(0.999);
        entry["quantiles"] = std::move(quantiles);
        // Sparse export: one [lower, upper, count] triple per occupied
        // bucket, so wide-range histograms stay small on disk.
        Json buckets = Json::array();
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
            if (h.buckets()[i] == 0)
                continue;
            Json triple = Json::array();
            triple.push(h.bucketLowerBound(i));
            triple.push(h.bucketUpperBound(i));
            triple.push(h.buckets()[i]);
            buckets.push(std::move(triple));
        }
        entry["buckets"] = std::move(buckets);
        log_histograms[name] = std::move(entry);
        describe(name, h.description());
    }
    doc["log_histograms"] = std::move(log_histograms);

    doc["descriptions"] = std::move(descriptions);
    return doc;
}

} // namespace ccache
