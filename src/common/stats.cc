#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace ccache {

StatHistogram::StatHistogram(std::string name, double bucket_width,
                             std::size_t nbuckets)
    : name_(std::move(name)), bucketWidth_(bucket_width),
      buckets_(nbuckets + 1, 0)
{
    CC_ASSERT(bucket_width > 0.0, "bucket width must be positive");
    CC_ASSERT(nbuckets > 0, "need at least one bucket");
}

void
StatHistogram::sample(double value)
{
    std::size_t idx = value < 0.0
        ? 0
        : std::min<std::size_t>(static_cast<std::size_t>(value / bucketWidth_),
                                buckets_.size() - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
StatHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

StatCounter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, StatCounter(name, desc)).first;
    return it->second;
}

StatAccum &
StatRegistry::accum(const std::string &name, const std::string &desc)
{
    auto it = accums_.find(name);
    if (it == accums_.end())
        it = accums_.emplace(name, StatAccum(name, desc)).first;
    return it->second;
}

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatRegistry::accumValue(const std::string &name) const
{
    auto it = accums_.find(name);
    return it == accums_.end() ? 0.0 : it->second.value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accums_)
        a.reset();
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : accums_)
        os << name << " " << a.value() << "\n";
    return os.str();
}

} // namespace ccache
