#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace ccache {

StatHistogram::StatHistogram(std::string name, double bucket_width,
                             std::size_t nbuckets, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc)),
      bucketWidth_(bucket_width), buckets_(nbuckets + 1, 0)
{
    CC_ASSERT(bucket_width > 0.0, "bucket width must be positive");
    CC_ASSERT(nbuckets > 0, "need at least one bucket");
}

void
StatHistogram::sample(double value)
{
    std::size_t idx = value < 0.0
        ? 0
        : std::min<std::size_t>(static_cast<std::size_t>(value / bucketWidth_),
                                buckets_.size() - 1);
    ++buckets_[idx];
    ++count_;
    sum_ += value;
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

double
StatHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

bool
StatHistogram::mergeFrom(const StatHistogram &other)
{
    if (bucketWidth_ != other.bucketWidth_ ||
        buckets_.size() != other.buckets_.size())
        return false;
    if (other.count_ == 0)
        return true;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
}

StatCounter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, StatCounter(name, desc)).first;
    return it->second;
}

StatAccum &
StatRegistry::accum(const std::string &name, const std::string &desc)
{
    auto it = accums_.find(name);
    if (it == accums_.end())
        it = accums_.emplace(name, StatAccum(name, desc)).first;
    return it->second;
}

StatHistogram &
StatRegistry::histogram(const std::string &name, double bucket_width,
                        std::size_t nbuckets, const std::string &desc)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(name,
                          StatHistogram(name, bucket_width, nbuckets, desc))
                 .first;
    return it->second;
}

StatFormula &
StatRegistry::formula(const std::string &name, StatFormula::Fn fn,
                      const std::string &desc)
{
    formulas_[name] = StatFormula(name, std::move(fn), desc);
    return formulas_[name];
}

StatGroup
StatRegistry::group(const std::string &prefix)
{
    return StatGroup(*this, prefix);
}

std::uint64_t
StatRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

double
StatRegistry::accumValue(const std::string &name) const
{
    auto it = accums_.find(name);
    return it == accums_.end() ? 0.0 : it->second.value();
}

double
StatRegistry::formulaValue(const std::string &name) const
{
    auto it = formulas_.find(name);
    return it == formulas_.end() ? 0.0 : it->second.value();
}

const StatHistogram *
StatRegistry::histogramAt(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accums_)
        a.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

void
StatRegistry::mergeFrom(const StatRegistry &other)
{
    for (const auto &[name, c] : other.counters_)
        counter(name, c.description()).inc(c.value());
    for (const auto &[name, a] : other.accums_)
        accum(name, a.description()).add(a.value());
    for (const auto &[name, h] : other.histograms_) {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, h);
            continue;
        }
        if (!it->second.mergeFrom(h))
            CC_WARN("stat histogram '", name,
                    "' has mismatched bucket geometry; merge skipped");
    }
}

std::string
StatRegistry::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : accums_)
        os << name << " " << a.value() << "\n";
    for (const auto &[name, h] : histograms_)
        os << name << " count=" << h.count() << " mean=" << h.mean()
           << " min=" << h.min() << " max=" << h.max() << "\n";
    for (const auto &[name, f] : formulas_)
        os << name << " " << f.value() << "\n";
    return os.str();
}

Json
StatRegistry::dumpJson() const
{
    Json doc = Json::object();
    doc["schema"] = "ccache-stats";
    doc["version"] = kStatsSchemaVersion;

    Json descriptions = Json::object();
    auto describe = [&](const std::string &name, const std::string &desc) {
        if (!desc.empty())
            descriptions[name] = desc;
    };

    Json counters = Json::object();
    for (const auto &[name, c] : counters_) {
        counters[name] = c.value();
        describe(name, c.description());
    }
    doc["counters"] = std::move(counters);

    Json accums = Json::object();
    for (const auto &[name, a] : accums_) {
        accums[name] = a.value();
        describe(name, a.description());
    }
    doc["accums"] = std::move(accums);

    Json formulas = Json::object();
    for (const auto &[name, f] : formulas_) {
        formulas[name] = f.value();
        describe(name, f.description());
    }
    doc["formulas"] = std::move(formulas);

    Json histograms = Json::object();
    for (const auto &[name, h] : histograms_) {
        Json entry = Json::object();
        entry["count"] = h.count();
        entry["mean"] = h.mean();
        entry["min"] = h.min();
        entry["max"] = h.max();
        entry["bucket_width"] = h.bucketWidth();
        Json buckets = Json::array();
        for (std::uint64_t b : h.buckets())
            buckets.push(b);
        entry["buckets"] = std::move(buckets);
        histograms[name] = std::move(entry);
        describe(name, h.description());
    }
    doc["histograms"] = std::move(histograms);

    doc["descriptions"] = std::move(descriptions);
    return doc;
}

} // namespace ccache
