#include "common/logging.hh"

#include <cstdlib>
#include <iostream>

#include "common/types.hh"

namespace ccache {

namespace {
bool g_verbose = false;
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
verbose()
{
    return g_verbose;
}

const char *
toString(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1: return "L1";
      case CacheLevel::L2: return "L2";
      case CacheLevel::L3: return "L3";
    }
    return "?";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (g_verbose)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_verbose)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace ccache
