#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "common/types.hh"

namespace ccache {

namespace {
// The only process-wide mutable state in the simulator: a console
// verbosity toggle. It never influences simulation results, and it is
// atomic so sweep shards may warn concurrently under TSan without a
// race (per-run state — stats, traces, RNGs — is constructor-injected
// everywhere; see DESIGN.md §8).
std::atomic<bool> g_verbose{false};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

const char *
toString(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L1: return "L1";
      case CacheLevel::L2: return "L2";
      case CacheLevel::L3: return "L3";
    }
    return "?";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    // $CCACHE_PANIC_ABORT=1 trades containment for a core dump at the
    // failure site (debuggers, CI triage); the default throw lets
    // SweepRunner/ccbench record the point as errored and continue.
    const char *env = std::getenv("CCACHE_PANIC_ABORT");
    if (env && env[0] == '1') {
        std::cerr << os.str() << std::endl;
        std::abort();
    }
    throw SimError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (g_verbose.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_verbose.load(std::memory_order_relaxed))
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace ccache
