/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * Failure taxonomy (see DESIGN.md §9):
 *
 *  - panic() / CC_ASSERT are for broken simulator invariants — states
 *    that no configuration, however extreme, should be able to reach.
 *    They throw SimError so a sweep driver can contain one corrupted
 *    point (record a structured error, keep the other points) instead
 *    of losing a whole catalog run to std::abort(). Set
 *    $CCACHE_PANIC_ABORT=1 to restore the aborting behaviour when a
 *    core dump at the failure site is worth more than containment
 *    (debugger sessions, CI triage).
 *
 *  - fatal() is for unusable *configurations*: the user asked for
 *    something the model cannot simulate (zero cores, geometry that
 *    does not decompose, fault rates outside [0,1], a cache too small
 *    to stage a CC operand set). It throws FatalError so tests can
 *    assert on misconfiguration handling, and so one bad sweep point
 *    cannot kill a ccbench catalog run.
 *
 * The audit line between the two: if a CC_PANIC site is reachable by
 * feeding the public API valid-but-extreme parameters, it is
 * misclassified and must become CC_FATAL (the pinned-set exhaustion in
 * Hierarchy::ensureInL3 and mapPage's slice range are the converted
 * precedents). Unreachable enum-default panics (bad CacheLevel, bad
 * BulkKernel, unknown SplashApp) stay panics: hitting one means the
 * program itself is wrong, not its inputs.
 */

#ifndef CCACHE_COMMON_LOGGING_HH
#define CCACHE_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccache {

/** Exception thrown by fatal(): the simulation cannot continue due to a
 *  user-level configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Exception thrown by panic()/CC_ASSERT: a simulator invariant broke.
 * Catchable so the sweep engine and ccbench can contain the failing
 * point/bench; carries an optional structured diagnostic (JSON text,
 * e.g. a ProgressWatchdog stall report) alongside the message.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg, std::string diagnostic = "")
        : std::runtime_error(msg), diagnostic_(std::move(diagnostic))
    {
    }

    /** Structured JSON diagnostic, empty when none was attached. */
    const std::string &diagnostic() const { return diagnostic_; }

  private:
    std::string diagnostic_;
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a mixed argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Toggle inform()/warn() console output (quiet by default in tests). */
void setVerbose(bool verbose);
bool verbose();

} // namespace ccache

#define CC_PANIC(...)                                                       \
    ::ccache::detail::panicImpl(__FILE__, __LINE__,                         \
                                ::ccache::detail::concat(__VA_ARGS__))

#define CC_FATAL(...)                                                       \
    ::ccache::detail::fatalImpl(__FILE__, __LINE__,                         \
                                ::ccache::detail::concat(__VA_ARGS__))

#define CC_WARN(...)                                                        \
    ::ccache::detail::warnImpl(::ccache::detail::concat(__VA_ARGS__))

#define CC_INFORM(...)                                                      \
    ::ccache::detail::informImpl(::ccache::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; reports as a panic. */
#define CC_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            CC_PANIC("assertion failed: " #cond " ", __VA_ARGS__);          \
        }                                                                   \
    } while (0)

#endif // CCACHE_COMMON_LOGGING_HH
