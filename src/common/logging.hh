/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for simulator bugs (never the user's fault) and aborts;
 * fatal() is for unusable configurations and throws FatalError so that
 * tests can assert on misconfiguration handling instead of dying.
 */

#ifndef CCACHE_COMMON_LOGGING_HH
#define CCACHE_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccache {

/** Exception thrown by fatal(): the simulation cannot continue due to a
 *  user-level configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a mixed argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Toggle inform()/warn() console output (quiet by default in tests). */
void setVerbose(bool verbose);
bool verbose();

} // namespace ccache

#define CC_PANIC(...)                                                       \
    ::ccache::detail::panicImpl(__FILE__, __LINE__,                         \
                                ::ccache::detail::concat(__VA_ARGS__))

#define CC_FATAL(...)                                                       \
    ::ccache::detail::fatalImpl(__FILE__, __LINE__,                         \
                                ::ccache::detail::concat(__VA_ARGS__))

#define CC_WARN(...)                                                        \
    ::ccache::detail::warnImpl(::ccache::detail::concat(__VA_ARGS__))

#define CC_INFORM(...)                                                      \
    ::ccache::detail::informImpl(::ccache::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; reports as a panic. */
#define CC_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            CC_PANIC("assertion failed: " #cond " ", __VA_ARGS__);          \
        }                                                                   \
    } while (0)

#endif // CCACHE_COMMON_LOGGING_HH
