#include "common/bitvector.hh"

#include <bit>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache {

BitVector::BitVector(std::size_t nbits)
    : nbits_(nbits), words_(divCeil(nbits, 64), 0)
{
}

BitVector
BitVector::fromString(const std::string &bits)
{
    BitVector bv(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        char c = bits[i];
        CC_ASSERT(c == '0' || c == '1', "bad bit char '", c, "'");
        // MSB-first string: character 0 is the highest bit index.
        bv.set(bits.size() - 1 - i, c == '1');
    }
    return bv;
}

BitVector
BitVector::fromBytes(const std::uint8_t *data, std::size_t nbytes)
{
    BitVector bv(nbytes * 8);
    for (std::size_t j = 0; j < nbytes; ++j) {
        std::uint64_t byte = data[j];
        bv.words_[j / 8] |= byte << ((j % 8) * 8);
    }
    return bv;
}

void
BitVector::setAll(bool value)
{
    std::uint64_t fill = value ? ~std::uint64_t{0} : 0;
    for (auto &w : words_)
        w = fill;
    trimTail();
}

std::size_t
BitVector::popcount() const
{
    std::size_t count = 0;
    for (auto w : words_)
        count += static_cast<std::size_t>(std::popcount(w));
    return count;
}

std::size_t
BitVector::findFirst() const
{
    return findNext(0);
}

std::size_t
BitVector::findNext(std::size_t from) const
{
    if (from >= nbits_)
        return nbits_;
    std::size_t wi = from / 64;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from % 64));
    while (true) {
        if (w != 0) {
            std::size_t bit = wi * 64 +
                static_cast<std::size_t>(std::countr_zero(w));
            return bit < nbits_ ? bit : nbits_;
        }
        if (++wi >= words_.size())
            return nbits_;
        w = words_[wi];
    }
}

BitVector &
BitVector::operator&=(const BitVector &other)
{
    CC_ASSERT(nbits_ == other.nbits_, "size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] &= other.words_[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &other)
{
    CC_ASSERT(nbits_ == other.nbits_, "size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] |= other.words_[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &other)
{
    CC_ASSERT(nbits_ == other.nbits_, "size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
        words_[i] ^= other.words_[i];
    return *this;
}

BitVector
BitVector::operator~() const
{
    BitVector result(*this);
    for (auto &w : result.words_)
        w = ~w;
    result.trimTail();
    return result;
}

bool
BitVector::operator==(const BitVector &other) const
{
    return nbits_ == other.nbits_ && words_ == other.words_;
}

std::vector<std::uint8_t>
BitVector::toBytes() const
{
    std::vector<std::uint8_t> bytes(divCeil(nbits_, 8), 0);
    // Word-at-a-time with an explicit little-endian byte unpack (the
    // layout the old byte loop defined); the fixed inner loop compiles
    // to a single 64-bit store on little-endian targets.
    std::size_t full = bytes.size() / 8;
    for (std::size_t w = 0; w < full; ++w) {
        std::uint64_t v = words_[w];
        for (unsigned k = 0; k < 8; ++k)
            bytes[w * 8 + k] = static_cast<std::uint8_t>(v >> (k * 8));
    }
    for (std::size_t j = full * 8; j < bytes.size(); ++j)
        bytes[j] = static_cast<std::uint8_t>(words_[j / 8] >> ((j % 8) * 8));
    return bytes;
}

std::string
BitVector::toString() const
{
    std::string s(nbits_, '0');
    for (std::size_t i = 0; i < nbits_; ++i)
        if (get(i))
            s[nbits_ - 1 - i] = '1';
    return s;
}

void
BitVector::trimTail()
{
    std::size_t rem = nbits_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << rem) - 1;
}

BitVector
operator&(BitVector lhs, const BitVector &rhs)
{
    lhs &= rhs;
    return lhs;
}

BitVector
operator|(BitVector lhs, const BitVector &rhs)
{
    lhs |= rhs;
    return lhs;
}

BitVector
operator^(BitVector lhs, const BitVector &rhs)
{
    lhs ^= rhs;
    return lhs;
}

} // namespace ccache
