#include "common/event_trace.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace ccache {

Cycles &
EventTrace::cursor(int track)
{
    std::size_t idx = static_cast<std::size_t>(track + 1);
    if (idx >= cursors_.size())
        cursors_.resize(idx + 1, 0);
    return cursors_[idx];
}

void
EventTrace::complete(const char *cat, std::string name, int track,
                     Cycles start, Cycles dur, Json args)
{
    if (!enabled_)
        return;
    Cycles &cur = cursor(track);
    Cycles ts = std::max(start, cur);
    cur = ts + dur;
    events_.push_back(
        {std::move(name), cat, 'X', ts, dur, track, std::move(args)});
}

void
EventTrace::instant(const char *cat, std::string name, int track, Cycles ts,
                    Json args)
{
    if (!enabled_)
        return;
    Cycles at = std::max(ts, cursor(track));
    events_.push_back(
        {std::move(name), cat, 'i', at, 0, track, std::move(args)});
}

void
EventTrace::clear()
{
    events_.clear();
    cursors_.clear();
}

void
EventTrace::mergeFrom(const EventTrace &other)
{
    events_.reserve(events_.size() + other.events_.size());
    for (const Event &e : other.events_) {
        Cycles &cur = cursor(e.track);
        cur = std::max(cur, e.ts + e.dur);
        events_.push_back(e);
    }
}

Json
EventTrace::toJson() const
{
    Json events = Json::array();

    // Metadata: name the process and one thread (track) per core, plus
    // the global track used by events without a core context.
    auto meta = [&](const char *what, int tid, const std::string &label) {
        Json m = Json::object();
        m["name"] = what;
        m["ph"] = "M";
        m["pid"] = 1;
        m["tid"] = tid;
        Json args = Json::object();
        args["name"] = label;
        m["args"] = std::move(args);
        events.push(std::move(m));
    };
    meta("process_name", 0, "ccache-sim");

    std::vector<int> tracks;
    for (const Event &e : events_)
        tracks.push_back(e.track);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
    for (int t : tracks) {
        std::string label;
        if (t == kGlobalTrack)
            label = "system";
        else if (t >= kNocTrackBase)
            label = "noc stop " + std::to_string(t - kNocTrackBase);
        else
            label = "core " + std::to_string(t);
        meta("thread_name", t + 1, label);
    }

    for (const Event &e : events_) {
        Json j = Json::object();
        j["name"] = e.name;
        j["cat"] = e.cat;
        j["ph"] = std::string(1, e.ph);
        j["ts"] = e.ts;
        if (e.ph == 'X')
            j["dur"] = e.dur;
        else if (e.ph == 'i')
            j["s"] = "t";   // instant scope: thread
        j["pid"] = 1;
        j["tid"] = e.track + 1;
        if (!e.args.isNull())
            j["args"] = e.args;
        events.push(std::move(j));
    }

    Json doc = Json::object();
    doc["traceEvents"] = std::move(events);
    doc["displayTimeUnit"] = "ns";
    Json other = Json::object();
    other["clock"] = "1 trace us == 1 simulated core cycle";
    doc["otherData"] = std::move(other);
    return doc;
}

std::string
EventTrace::dumpChromeJson() const
{
    return toJson().dump();
}

bool
EventTrace::writeFile(const std::string &path) const
{
    // Temp-file + atomic rename with checked stream state: an
    // interrupted or failed write can never leave a torn trace file
    // behind for tooling (or --resume) to trip over.
    namespace fs = std::filesystem;
#if defined(__unix__) || defined(__APPLE__)
    std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
    std::string tmp = path + ".tmp";
#endif
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            CC_WARN("cannot open trace file ", tmp);
            return false;
        }
        out << dumpChromeJson() << "\n";
        out.flush();
        if (!out) {
            CC_WARN("write to trace file ", tmp, " failed");
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        CC_WARN("cannot rename ", tmp, " over ", path, ": ",
                ec.message());
        std::error_code rm;
        fs::remove(tmp, rm);
        return false;
    }
    return true;
}

} // namespace ccache
