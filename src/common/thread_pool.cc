#include "common/thread_pool.hh"

#include <cstdlib>

namespace ccache {

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        return;  // inline mode: no deques, submit() executes directly
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    // Let queued work drain (swallowing any stored exception: nobody is
    // left to observe it), then wake every worker for shutdown.
    try {
        wait();
    } catch (...) {
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    if (queues_.empty()) {
        task();  // inline mode: serial reference execution
        return;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    unsigned q = static_cast<unsigned>(
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size());
    {
        std::lock_guard<std::mutex> lock(queues_[q]->mu);
        queues_[q]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++queued_;
    }
    workReady_.notify_one();
}

bool
ThreadPool::popTask(unsigned queue, bool back, Task &out)
{
    WorkQueue &q = *queues_[queue];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty())
        return false;
    if (back) {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
    } else {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
    }
    return true;
}

bool
ThreadPool::runOneTask(unsigned home)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    Task task;
    bool got = home < n && popTask(home, /*back=*/true, task);
    for (unsigned k = 0; !got && k < n; ++k)
        got = popTask((home + 1 + k) % n, /*back=*/false, task);
    if (!got)
        return false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        --queued_;
    }
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_)
            error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        allDone_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(mu_);
        workReady_.wait(lock, [this] { return stop_ || queued_ > 0; });
        if (stop_ && queued_ == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    if (!queues_.empty()) {
        // Help drain the deques; home index past the workers means "no
        // own deque, steal from everyone".
        const unsigned helper = static_cast<unsigned>(queues_.size());
        while (pending_.load(std::memory_order_acquire) > 0) {
            if (runOneTask(helper))
                continue;
            std::unique_lock<std::mutex> lock(mu_);
            allDone_.wait(lock, [this] {
                return pending_.load(std::memory_order_acquire) == 0 ||
                    queued_ > 0;
            });
        }
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::swap(err, error_);
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    for (std::size_t i = 0; i < n; ++i)
        submit([&body, i] { body(i); });
    wait();
}

unsigned
ThreadPool::hardwareWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
ThreadPool::defaultWorkers()
{
    if (const char *env = std::getenv("CCACHE_JOBS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return hardwareWorkers();
}

} // namespace ccache
