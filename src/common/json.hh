/**
 * @file
 * Minimal JSON value type, writer and parser.
 *
 * The observability layer (stats export, bench result files, Chrome
 * trace events, the ccstat comparator) needs a dependency-free way to
 * build, serialize and re-read JSON documents. This is a deliberately
 * small implementation: objects are ordered maps (deterministic output
 * for golden-file comparison), numbers are doubles serialized with
 * round-trip precision (integral values print without a fraction), and
 * parse errors report line/column context instead of throwing.
 */

#ifndef CCACHE_COMMON_JSON_HH
#define CCACHE_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccache {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), number_(n) {}
    Json(int n) : type_(Type::Number), number_(n) {}
    Json(unsigned n) : type_(Type::Number), number_(n) {}
    Json(std::int64_t n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {
    }
    Json(std::uint64_t n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {
    }
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

    /** Named constructors for empty containers. @{ */
    static Json object() { return Json(Object{}); }
    static Json array() { return Json(Array{}); }
    /** @} */

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors (defaulted when the type does not match). @{ */
    bool asBool(bool dflt = false) const
    {
        return isBool() ? bool_ : dflt;
    }
    double asNumber(double dflt = 0.0) const
    {
        return isNumber() ? number_ : dflt;
    }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return array_; }
    const Object &asObject() const { return object_; }
    /** @} */

    /** Object field access; inserting for mutation, null for lookup
     *  misses. Calling the mutating form converts a null value into an
     *  empty object. @{ */
    Json &operator[](const std::string &key);
    const Json *find(const std::string &key) const;
    /** @} */

    /** Array append (converts a null value into an empty array). */
    void push(Json v);

    std::size_t size() const;

    /** Serialize. @p indent > 0 pretty-prints with that many spaces per
     *  level; 0 emits compact one-line JSON. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text. On failure returns a null value and, when @p error
     * is non-null, stores a human-readable message with line context.
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

} // namespace ccache

#endif // CCACHE_COMMON_JSON_HH
