/**
 * @file
 * 64-byte cache block payload type and conversions.
 */

#ifndef CCACHE_COMMON_BLOCK_HH
#define CCACHE_COMMON_BLOCK_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "common/bitvector.hh"
#include "common/types.hh"

namespace ccache {

/** Raw bytes of one cache block. */
using Block = std::array<std::uint8_t, kBlockSize>;

/** An all-zero block. */
inline Block
zeroBlock()
{
    Block b{};
    return b;
}

/** Bit i of byte j maps to BitVector bit j*8+i (little-endian bit order,
 *  matching the physical column order within a block partition). */
inline BitVector
blockToBits(const Block &block)
{
    return BitVector::fromBytes(block.data(), block.size());
}

/** Inverse of blockToBits. */
inline Block
bitsToBlock(const BitVector &bits)
{
    Block block{};
    auto bytes = bits.toBytes();
    std::size_t n = bytes.size() < block.size() ? bytes.size() : block.size();
    std::memcpy(block.data(), bytes.data(), n);
    return block;
}

/** Read the @p i-th 64-bit word of a block (little endian). */
inline std::uint64_t
blockWord(const Block &block, std::size_t i)
{
    std::uint64_t w;
    std::memcpy(&w, block.data() + i * 8, 8);
    return w;
}

/** Write the @p i-th 64-bit word of a block (little endian). */
inline void
setBlockWord(Block &block, std::size_t i, std::uint64_t w)
{
    std::memcpy(block.data() + i * 8, &w, 8);
}

/** Words per block (8 x 64-bit words in a 64-byte block). */
inline constexpr std::size_t kWordsPerBlock = kBlockSize / 8;

} // namespace ccache

#endif // CCACHE_COMMON_BLOCK_HH
