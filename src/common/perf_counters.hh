/**
 * @file
 * Process-wide throughput counters for the perf section of bench result
 * files (DESIGN.md §13).
 *
 * Simulation statistics live in per-point StatRegistry instances so the
 * sweep engine can merge them deterministically. Wall-clock throughput
 * is the opposite kind of number: it is intentionally nondeterministic
 * (it measures this machine, this run) and must aggregate across every
 * sweep point in the process regardless of which thread ran it. One
 * relaxed atomic serves that purpose; bench::ResultsWriter divides it by
 * elapsed wall time to produce the tracked "ops_per_sec" metric.
 */

#ifndef CCACHE_COMMON_PERF_COUNTERS_HH
#define CCACHE_COMMON_PERF_COUNTERS_HH

#include <atomic>
#include <cstdint>

namespace ccache::perf {

/** Total CC block operations executed by every controller in this
 *  process (one count per cache-block-sized op, the paper's unit of
 *  compute). */
inline std::atomic<std::uint64_t> g_ccBlockOps{0};

/** Charge @p n block ops (relaxed: the count is a throughput total,
 *  never synchronizes anything). */
inline void
addCcBlockOps(std::uint64_t n)
{
    g_ccBlockOps.fetch_add(n, std::memory_order_relaxed);
}

/** Current process-wide block-op total. */
inline std::uint64_t
ccBlockOps()
{
    return g_ccBlockOps.load(std::memory_order_relaxed);
}

} // namespace ccache::perf

#endif // CCACHE_COMMON_PERF_COUNTERS_HH
