/**
 * @file
 * Work-stealing thread pool for the parallel sweep engine.
 *
 * Each worker owns a deque: it pushes and pops its own work LIFO (cache
 * locality) and steals FIFO from the other workers when its deque runs
 * dry, so a batch of uneven sweep points load-balances itself. External
 * submissions are distributed round-robin across the worker deques.
 *
 * Determinism contract (DESIGN.md §8): the pool never owns simulation
 * state. Tasks receive everything they touch by value or through
 * per-task instances (StatRegistry, EventTrace, Rng), so the schedule —
 * which worker runs which task, in which order — cannot influence
 * results. A pool constructed with 0 workers executes every task inline
 * on the submitting thread, which is the serial reference the
 * determinism tests compare against.
 *
 * Tasks may throw: the first exception is captured and re-thrown from
 * wait() (or parallelFor()) on the calling thread; the remaining tasks
 * still run to completion so the pool is reusable afterwards.
 */

#ifndef CCACHE_COMMON_THREAD_POOL_HH
#define CCACHE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ccache {

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @p workers threads are spawned; 0 means inline (serial) mode. */
    explicit ThreadPool(unsigned workers = defaultWorkers());
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (0 in inline mode). */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Enqueue one task. In inline mode the task runs before submit()
     * returns (exceptions propagate immediately); otherwise it runs on
     * some worker, or on a thread that enters wait() and helps out.
     */
    void submit(Task task);

    /**
     * Block until every submitted task has completed. The calling
     * thread participates by stealing queued tasks instead of idling.
     * Re-throws the first exception any task raised since the last
     * wait().
     */
    void wait();

    /**
     * Convenience fan-out: submit @p body for every index in [0, n)
     * and wait. Indices may execute in any order and on any thread.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static unsigned hardwareWorkers();

    /** $CCACHE_JOBS when set (>= 1), hardwareWorkers() otherwise. */
    static unsigned defaultWorkers();

  private:
    /** One worker's deque. Owner pops back; thieves pop front. */
    struct WorkQueue
    {
        std::mutex mu;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);

    /** Pop from @p queue (back for the owner, front for a thief). */
    bool popTask(unsigned queue, bool back, Task &out);

    /**
     * Find and run one task: own deque first (when @p home indexes a
     * worker), then steal round-robin. Returns false when every deque
     * is empty.
     */
    bool runOneTask(unsigned home);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex mu_;                    ///< guards queued_/stop_/error_
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t queued_ = 0;           ///< tasks sitting in some deque
    bool stop_ = false;
    std::exception_ptr error_;
    std::atomic<std::size_t> pending_{0};   ///< submitted, not finished
    std::atomic<std::size_t> nextQueue_{0}; ///< round-robin submit cursor
};

} // namespace ccache

#endif // CCACHE_COMMON_THREAD_POOL_HH
