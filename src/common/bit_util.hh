/**
 * @file
 * Small bit-manipulation helpers used throughout the simulator.
 */

#ifndef CCACHE_COMMON_BIT_UTIL_HH
#define CCACHE_COMMON_BIT_UTIL_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace ccache {

/** True iff @p v is a power of two (and nonzero). */
inline constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
inline unsigned
log2Exact(std::uint64_t v)
{
    CC_ASSERT(isPowerOfTwo(v), "log2Exact of non-power-of-two ", v);
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceiling log2. */
inline constexpr unsigned
log2Ceil(std::uint64_t v)
{
    return v <= 1 ? 0
                  : 64u - static_cast<unsigned>(std::countl_zero(v - 1));
}

/** Extract bits [lo, lo+width) of @p value. */
inline constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Align @p addr down to a multiple of @p align (power of two). */
inline constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
inline constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True iff @p addr is a multiple of @p align (power of two). */
inline constexpr bool
isAligned(Addr addr, std::uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/** Divide rounding up. */
inline constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace ccache

#endif // CCACHE_COMMON_BIT_UTIL_HH
