/**
 * @file
 * Statistics package (gem5-stats-inspired).
 *
 * Components register named scalar counters, floating-point
 * accumulators, distributions (histograms) and derived formulas with a
 * StatRegistry. Names are hierarchical with '.'-separated components
 * following the `<component>.<unit>.<metric>` convention (DESIGN.md §7);
 * a StatGroup handle scopes registration under a common prefix so a
 * component never spells its own prefix twice.
 *
 * Output surfaces:
 *  - dump(): sorted plain text, one `name value` per line (human /
 *    grep-oriented, the historical format);
 *  - dumpJson(): a typed, schema-versioned JSON document
 *    (kStatsSchemaVersion) that bench result files embed and
 *    tools/ccstat diffs. See DESIGN.md §7 for the schema contract.
 */

#ifndef CCACHE_COMMON_STATS_HH
#define CCACHE_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace ccache {

/**
 * Version of the JSON stats schema emitted by StatRegistry::dumpJson().
 * Bump on any change that could break a consumer (renamed sections,
 * changed value types); adding new top-level sections is backward
 * compatible and does not require a bump.
 *
 * v2: histogram bucket arrays switched semantics for the new
 * log-bucketed type — "log_histograms" entries carry sparse
 * [lower, upper, count] triples plus a "quantiles" object, and
 * quantile keys (p50/p90/p99/p999) are part of the contract
 * (DESIGN.md §7.2).
 *
 * v3: the serve-layer shed_log reason vocabulary grew three fleet
 * reasons — "partial_result" (fan-out parent shed after a leg failed
 * terminally), "global_queue_full" (fleet-wide admission budget
 * exhausted with no lower-QoS victim), and "migration_drain"
 * (request expelled from a draining shard during live tenant
 * migration).  Consumers that enumerate reasons exhaustively must
 * learn the new strings (DESIGN.md §7.2).
 */
inline constexpr int kStatsSchemaVersion = 3;

/** A named monotonically-updated scalar statistic. */
class StatCounter
{
  public:
    StatCounter() = default;
    explicit StatCounter(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/** A named accumulating floating-point statistic (e.g. energy). */
class StatAccum
{
  public:
    StatAccum() = default;
    explicit StatAccum(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void add(double delta) { value_ += delta; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Simple histogram with fixed uniform buckets plus an overflow bucket. */
class StatHistogram
{
  public:
    StatHistogram() = default;
    StatHistogram(std::string name, double bucket_width,
                  std::size_t nbuckets, std::string desc = "");

    void sample(double value);
    void reset();

    /**
     * Fold @p other into this histogram. Returns false (leaving this
     * histogram untouched) when the bucket geometries differ — merged
     * histograms must have been registered identically.
     */
    bool mergeFrom(const StatHistogram &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double bucketWidth() const { return bucketWidth_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double bucketWidth_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log-bucketed histogram for long-tailed quantities (latencies, queue
 * depths): values are integer-valued samples bucketed HDR-histogram
 * style — exact below 2^subBucketBits, then 2^subBucketBits
 * sub-buckets per octave, bounding the relative quantization error by
 * 2^-subBucketBits (6.25% at the default 4 bits) across the whole
 * 64-bit range with under a thousand buckets.
 *
 * Unlike StatHistogram's fixed uniform grid, no upper bound needs to
 * be guessed at registration time, which is what tail-latency
 * accounting needs: p99.9 of a saturated queue can be orders of
 * magnitude above the median. Quantiles are deterministic functions
 * of the recorded counts (no interpolation): quantile(q) is the
 * smallest bucket upper bound covering at least ceil(q * count)
 * samples, clamped to the observed max.
 */
class StatLogHistogram
{
  public:
    /** Default sub-bucket resolution (16 sub-buckets per octave). */
    static constexpr unsigned kDefaultSubBucketBits = 4;

    StatLogHistogram() = default;
    explicit StatLogHistogram(std::string name, std::string desc = "",
                              unsigned sub_bucket_bits =
                                  kDefaultSubBucketBits);

    void sample(std::uint64_t value);
    void reset();

    /** Fold @p other into this histogram. Returns false (no change)
     *  when the sub-bucket resolutions differ. */
    bool mergeFrom(const StatLogHistogram &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    unsigned subBucketBits() const { return subBucketBits_; }

    /**
     * Upper bound on the q-quantile (0 < q <= 1): the smallest bucket
     * upper bound b with #(samples <= b) >= ceil(q * count), clamped
     * to max(). 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /** Bucket index of @p value. */
    std::size_t bucketIndex(std::uint64_t value) const;

    /** Smallest / largest value mapping to bucket @p idx. @{ */
    std::uint64_t bucketLowerBound(std::size_t idx) const;
    std::uint64_t bucketUpperBound(std::size_t idx) const;
    /** @} */

    /** Dense bucket counts (sized to the highest sampled index). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    unsigned subBucketBits_ = kDefaultSubBucketBits;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named derived statistic: a function of other stats, evaluated at
 * dump time (e.g. a hit ratio or per-instruction rate). Formulas are
 * never reset — they have no state of their own.
 */
class StatFormula
{
  public:
    using Fn = std::function<double()>;

    StatFormula() = default;
    StatFormula(std::string name, Fn fn, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc)), fn_(std::move(fn))
    {
    }

    double value() const { return fn_ ? fn_() : 0.0; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    Fn fn_;
};

class StatGroup;

/** Registry that owns every named statistic of one simulation. */
class StatRegistry
{
  public:
    /** Get or create a counter. Names are hierarchical ("l3.read_hits"). */
    StatCounter &counter(const std::string &name,
                         const std::string &desc = "");

    /** Get or create an accumulator. */
    StatAccum &accum(const std::string &name, const std::string &desc = "");

    /** Get or create a histogram. Bucket geometry is fixed by the first
     *  registration; later calls return the existing histogram. */
    StatHistogram &histogram(const std::string &name, double bucket_width,
                             std::size_t nbuckets,
                             const std::string &desc = "");

    /** Get or create a log-bucketed histogram. Resolution is fixed by
     *  the first registration. */
    StatLogHistogram &logHistogram(
        const std::string &name, const std::string &desc = "",
        unsigned sub_bucket_bits = StatLogHistogram::kDefaultSubBucketBits);

    /** Register (or replace) a derived formula evaluated at dump time. */
    StatFormula &formula(const std::string &name, StatFormula::Fn fn,
                         const std::string &desc = "");

    /** A registration handle scoped under @p prefix (no trailing dot). */
    StatGroup group(const std::string &prefix);

    /** Look up an existing counter value; 0 if absent. */
    std::uint64_t value(const std::string &name) const;

    /** Look up an existing accumulator value; 0.0 if absent. */
    double accumValue(const std::string &name) const;

    /** Evaluate an existing formula; 0.0 if absent. */
    double formulaValue(const std::string &name) const;

    /** Look up an existing histogram; nullptr if absent. */
    const StatHistogram *histogramAt(const std::string &name) const;

    /** Look up an existing log histogram; nullptr if absent. */
    const StatLogHistogram *logHistogramAt(const std::string &name) const;

    /** Reset every statistic to zero (formulas have no state). */
    void resetAll();

    /**
     * Fold every statistic of @p other into this registry: counters and
     * accumulators add, histograms merge bucket-wise (geometry must
     * match; mismatches are reported with a warn and skipped). Formulas
     * are NOT merged — they capture references into their own registry
     * and a sum-of-ratios is not the ratio-of-sums anyway; re-register
     * formulas on the merged registry when they are wanted.
     *
     * Merging is commutative for counters and histogram counts, and the
     * parallel sweep engine always merges shards in their definition
     * order, so floating-point accumulator sums are bit-identical
     * regardless of thread count (DESIGN.md §8).
     */
    void mergeFrom(const StatRegistry &other);

    /** Render all stats, sorted by name, one per line. */
    std::string dump() const;

    /**
     * Export every statistic as a typed JSON document:
     *
     *     { "schema": "ccache-stats", "version": kStatsSchemaVersion,
     *       "counters":   { "<name>": <integer>, ... },
     *       "accums":     { "<name>": <double>, ... },
     *       "formulas":   { "<name>": <double>, ... },
     *       "histograms": { "<name>": { "count", "mean", "min", "max",
     *                                   "bucket_width", "buckets": [...] } },
     *       "log_histograms": { "<name>": { "count", "mean", "min", "max",
     *                                       "sub_bucket_bits",
     *                                       "quantiles": { "p50", "p90",
     *                                                      "p99", "p999" },
     *                                       "buckets":
     *                                           [[lo, hi, count], ...] } },
     *       "descriptions": { "<name>": "<desc>", ... } }   // non-empty only
     */
    Json dumpJson() const;

  private:
    std::map<std::string, StatCounter> counters_;
    std::map<std::string, StatAccum> accums_;
    std::map<std::string, StatHistogram> histograms_;
    std::map<std::string, StatLogHistogram> logHistograms_;
    std::map<std::string, StatFormula> formulas_;
};

/**
 * Hierarchical registration handle: all stats created through a group
 * share its dotted prefix, and nested groups extend it. Groups are
 * cheap value types — components keep one instead of re-spelling their
 * prefix at every registration site.
 *
 *     StatGroup g = registry.group("l1.0");
 *     g.counter("reads");               // "l1.0.reads"
 *     g.group("ecc").counter("fixes");  // "l1.0.ecc.fixes"
 */
class StatGroup
{
  public:
    StatGroup(StatRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {
    }

    const std::string &prefix() const { return prefix_; }
    StatRegistry &registry() { return *registry_; }

    StatGroup group(const std::string &sub) const
    {
        return StatGroup(*registry_, qualify(sub));
    }

    StatCounter &counter(const std::string &name,
                         const std::string &desc = "")
    {
        return registry_->counter(qualify(name), desc);
    }

    StatAccum &accum(const std::string &name, const std::string &desc = "")
    {
        return registry_->accum(qualify(name), desc);
    }

    StatHistogram &histogram(const std::string &name, double bucket_width,
                             std::size_t nbuckets,
                             const std::string &desc = "")
    {
        return registry_->histogram(qualify(name), bucket_width, nbuckets,
                                    desc);
    }

    StatLogHistogram &logHistogram(
        const std::string &name, const std::string &desc = "",
        unsigned sub_bucket_bits = StatLogHistogram::kDefaultSubBucketBits)
    {
        return registry_->logHistogram(qualify(name), desc,
                                       sub_bucket_bits);
    }

    StatFormula &formula(const std::string &name, StatFormula::Fn fn,
                         const std::string &desc = "")
    {
        return registry_->formula(qualify(name), std::move(fn), desc);
    }

  private:
    std::string qualify(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    StatRegistry *registry_;
    std::string prefix_;
};

} // namespace ccache

#endif // CCACHE_COMMON_STATS_HH
