/**
 * @file
 * Lightweight statistics package (gem5-stats-inspired).
 *
 * Components register named scalar counters and distributions with a
 * StatRegistry; benches and tests read them back by name, and the registry
 * can render a full dump for EXPERIMENTS.md-style reporting.
 */

#ifndef CCACHE_COMMON_STATS_HH
#define CCACHE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccache {

/** A named monotonically-updated scalar statistic. */
class StatCounter
{
  public:
    StatCounter() = default;
    explicit StatCounter(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/** A named accumulating floating-point statistic (e.g. energy). */
class StatAccum
{
  public:
    StatAccum() = default;
    explicit StatAccum(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }

    void add(double delta) { value_ += delta; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Simple histogram with fixed uniform buckets plus an overflow bucket. */
class StatHistogram
{
  public:
    StatHistogram() = default;
    StatHistogram(std::string name, double bucket_width, std::size_t nbuckets);

    void sample(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    double bucketWidth_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Registry that owns named counters/accumulators for one simulation. */
class StatRegistry
{
  public:
    /** Get or create a counter. Names are hierarchical ("l3.read_hits"). */
    StatCounter &counter(const std::string &name,
                         const std::string &desc = "");

    /** Get or create an accumulator. */
    StatAccum &accum(const std::string &name, const std::string &desc = "");

    /** Look up an existing counter value; 0 if absent. */
    std::uint64_t value(const std::string &name) const;

    /** Look up an existing accumulator value; 0.0 if absent. */
    double accumValue(const std::string &name) const;

    /** Reset every statistic to zero. */
    void resetAll();

    /** Render all stats, sorted by name, one per line. */
    std::string dump() const;

  private:
    std::map<std::string, StatCounter> counters_;
    std::map<std::string, StatAccum> accums_;
};

} // namespace ccache

#endif // CCACHE_COMMON_STATS_HH
