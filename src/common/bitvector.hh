/**
 * @file
 * Dynamic bit vector with word-level bulk logical operations.
 *
 * Used as the reference ("golden") implementation for the bit-line compute
 * operations, and as the payload type for DB-BitMap bins.
 */

#ifndef CCACHE_COMMON_BITVECTOR_HH
#define CCACHE_COMMON_BITVECTOR_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace ccache {

/** Fixed-size-at-construction bit vector backed by 64-bit words. */
class BitVector
{
  public:
    BitVector() = default;

    /** Create a vector of @p nbits bits, all cleared. */
    explicit BitVector(std::size_t nbits);

    /** Create from a string of '0'/'1' characters, MSB-first. */
    static BitVector fromString(const std::string &bits);

    /** Create from raw bytes; bit i of byte j becomes bit j*8+i. */
    static BitVector fromBytes(const std::uint8_t *data, std::size_t nbytes);

    std::size_t size() const { return nbits_; }
    bool empty() const { return nbits_ == 0; }

    /** Single-bit accessors, inline: workload generators call these
     *  once per row/bit (millions of times per bench). @{ */
    bool
    get(std::size_t i) const
    {
        CC_ASSERT(i < nbits_, "bit index ", i, " out of range ", nbits_);
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    void
    set(std::size_t i, bool value)
    {
        CC_ASSERT(i < nbits_, "bit index ", i, " out of range ", nbits_);
        std::uint64_t mask = std::uint64_t{1} << (i % 64);
        if (value)
            words_[i / 64] |= mask;
        else
            words_[i / 64] &= ~mask;
    }
    /** @} */

    void setAll(bool value);

    /** Number of set bits. */
    std::size_t popcount() const;

    /** True iff no bit is set. */
    bool none() const { return popcount() == 0; }

    /** Index of first set bit, or size() if none. */
    std::size_t findFirst() const;

    /** Index of first set bit at or after @p from, or size() if none. */
    std::size_t findNext(std::size_t from) const;

    /** Bulk logical operations; operands must have equal size. @{ */
    BitVector &operator&=(const BitVector &other);
    BitVector &operator|=(const BitVector &other);
    BitVector &operator^=(const BitVector &other);
    BitVector operator~() const;
    /** @} */

    bool operator==(const BitVector &other) const;

    /** Copy bits out as packed bytes (low bit first within each byte). */
    std::vector<std::uint8_t> toBytes() const;

    /** MSB-first '0'/'1' string, for diagnostics. */
    std::string toString() const;

    /** Direct word access for the fast paths in workloads. @{ */
    const std::vector<std::uint64_t> &words() const { return words_; }
    std::vector<std::uint64_t> &words() { return words_; }
    /** @} */

  private:
    /** Clear any bits beyond nbits_ in the last word. */
    void trimTail();

    std::size_t nbits_ = 0;
    std::vector<std::uint64_t> words_;
};

BitVector operator&(BitVector lhs, const BitVector &rhs);
BitVector operator|(BitVector lhs, const BitVector &rhs);
BitVector operator^(BitVector lhs, const BitVector &rhs);

} // namespace ccache

#endif // CCACHE_COMMON_BITVECTOR_HH
