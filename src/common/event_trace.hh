/**
 * @file
 * Timeline event sink emitting Chrome trace-event JSON.
 *
 * Components (cache hierarchy, NoC, CC controller, fault ladder) record
 * timestamped events into an EventTrace; the sink serializes them in the
 * Chrome trace-event format, loadable in Perfetto (https://ui.perfetto.dev)
 * or chrome://tracing. One simulated cycle maps to one trace microsecond.
 *
 * Overhead contract (DESIGN.md §7): the sink is disabled by default and
 * every instrumentation site guards with `if (trace && trace->enabled())`,
 * so a disabled run performs no allocation, no formatting and no RNG or
 * stats perturbation — outputs are bit-identical to a build without the
 * instrumentation.
 *
 * Timestamps come from a clock callback installed by the owning System
 * (per-core simulated clocks). Because callers advance core clocks only
 * between top-level operations, events inside one operation share a
 * coarse start time; the sink keeps a per-track cursor and lays such
 * events end-to-end so tracks remain readable and non-overlapping.
 */

#ifndef CCACHE_COMMON_EVENT_TRACE_HH
#define CCACHE_COMMON_EVENT_TRACE_HH

#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace ccache {

/** Trace-event categories (the "cat" field; filterable in Perfetto). */
namespace tracecat {
inline constexpr const char *kCache = "cache";
inline constexpr const char *kCc = "cc";
inline constexpr const char *kNoc = "noc";
inline constexpr const char *kFault = "fault";
inline constexpr const char *kServe = "serve";
} // namespace tracecat

/** Collects simulation events and serializes Chrome trace-event JSON. */
class EventTrace
{
  public:
    /** Clock callback: simulated cycles for a core; kGlobalTrack asks
     *  for the global (max-over-cores) clock. */
    using ClockFn = std::function<Cycles(int core)>;

    static constexpr int kGlobalTrack = -1;

    /** NoC events live on per-stop tracks offset by this base so they do
     *  not serialize against the core tracks (track = base + stop). */
    static constexpr int kNocTrackBase = 100;

    /** Serving-layer waves and admission events (DESIGN.md §11). */
    static constexpr int kServeTrack = 200;

    bool enabled() const { return enabled_; }
    void enable(bool on = true) { enabled_ = on; }

    void setClock(ClockFn fn) { clock_ = std::move(fn); }

    /** Current simulated time of @p track (0 without a clock). */
    Cycles now(int track) const
    {
        return clock_ ? clock_(track) : 0;
    }

    /**
     * Record a duration ("complete", ph=X) event on @p track starting at
     * @p start for @p dur cycles. If @p start is behind the track's
     * cursor the event is shifted to the cursor (see file header).
     */
    void complete(const char *cat, std::string name, int track,
                  Cycles start, Cycles dur, Json args = Json());

    /** Record an instant (ph=i) event at max(@p ts, track cursor). */
    void instant(const char *cat, std::string name, int track, Cycles ts,
                 Json args = Json());

    std::size_t size() const { return events_.size(); }

    /** Drop all recorded events and reset the track cursors. */
    void clear();

    /**
     * Append every event of @p other (recorded independently, e.g. by
     * one shard of a parallel sweep) to this trace, advancing the track
     * cursors to cover the appended events. The parallel sweep engine
     * merges shard traces in definition order at the barrier, so the
     * merged event sequence is identical at any thread count
     * (DESIGN.md §8). Records regardless of the enabled() gate: the
     * shards already applied it when recording.
     */
    void mergeFrom(const EventTrace &other);

    /** The full trace document: {"traceEvents": [...], ...}. */
    Json toJson() const;

    /** toJson() serialized (compact — Perfetto does not need pretty). */
    std::string dumpChromeJson() const;

    /** Write the trace to @p path; false (with a warn) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Event
    {
        std::string name;
        const char *cat;
        char ph;
        Cycles ts;
        Cycles dur;
        int track;
        Json args;
    };

    Cycles &cursor(int track);

    bool enabled_ = false;
    ClockFn clock_;
    std::vector<Event> events_;
    std::vector<Cycles> cursors_;   ///< index = track + 1 (global at 0)
};

} // namespace ccache

#endif // CCACHE_COMMON_EVENT_TRACE_HH
