/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All workload generators use this RNG so that every experiment in the
 * repository is bit-reproducible across runs and platforms.
 */

#ifndef CCACHE_COMMON_RNG_HH
#define CCACHE_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace ccache {

/** SplitMix64 finalizer: one high-quality 64-bit mixing step. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Derive the RNG seed of one shard of a sweep:
 *
 *     seed = mix64(base_seed ^ mix64(fnv1a(shard_key)))
 *
 * The derivation depends only on the (base_seed, shard_key) pair —
 * never on thread identity, scheduling order or global state — so a
 * sweep point draws the same random stream whether the sweep runs
 * serially or across any number of threads (DESIGN.md §8). Distinct
 * keys decorrelate: the FNV-1a hash plus the SplitMix64 finalizer
 * spread even single-character key differences over all 64 bits.
 */
inline std::uint64_t
deriveSeed(std::uint64_t base_seed, std::string_view shard_key)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    for (unsigned char c : shard_key) {
        h ^= c;
        h *= 0x100000001b3ULL;  // FNV-1a prime
    }
    return mix64(base_seed ^ mix64(h));
}

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace ccache

#endif // CCACHE_COMMON_RNG_HH
