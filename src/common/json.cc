#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ccache {

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    return object_[key];
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    array_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    switch (type_) {
      case Type::Array: return array_.size();
      case Type::Object: return object_.size();
      default: return 0;
    }
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null so the document stays loadable.
        out += "null";
        return;
    }
    double rounded = std::nearbyint(v);
    if (rounded == v && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out += buf;
        return;
    }
    // Shortest representation that still round-trips through parse().
    char buf[40];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    out += buf;
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

/** Recursive-descent JSON parser over a flat buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    Json run()
    {
        Json v = parseValue();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON value");
            return Json();
        }
        return v;
    }

  private:
    /**
     * Containers nest recursively, so bound the depth: a hostile
     * "[[[[..." input must produce a parse error, not exhaust the
     * stack. 256 levels is far beyond any document the simulator
     * emits (stats dumps nest 3 deep).
     */
    static constexpr int kMaxDepth = 256;

    Json parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        switch (text_[pos_]) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseKeyword();
          case 'n': return parseNull();
          default: return parseNumber();
        }
    }

    Json parseObject()
    {
        if (++depth_ > kMaxDepth) {
            fail("nesting too deep");
            return Json();
        }
        ++pos_; // '{'
        Json::Object obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return Json(std::move(obj));
        }
        while (!failed_) {
            skipWs();
            if (peek() != '"') {
                fail("expected object key string");
                break;
            }
            Json key = parseString();
            if (failed_)
                break;
            skipWs();
            if (peek() != ':') {
                fail("expected ':' after object key");
                break;
            }
            ++pos_;
            obj[key.asString()] = parseValue();
            if (failed_)
                break;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return Json(std::move(obj));
            }
            fail("expected ',' or '}' in object");
        }
        return Json();
    }

    Json parseArray()
    {
        if (++depth_ > kMaxDepth) {
            fail("nesting too deep");
            return Json();
        }
        ++pos_; // '['
        Json::Array arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return Json(std::move(arr));
        }
        while (!failed_) {
            arr.push_back(parseValue());
            if (failed_)
                break;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                --depth_;
                return Json(std::move(arr));
            }
            fail("expected ',' or ']' in array");
        }
        return Json();
    }

    Json parseString()
    {
        ++pos_; // '"'
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return Json(std::move(s));
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        fail("truncated \\u escape");
                        return Json();
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else {
                            fail("bad hex digit in \\u escape");
                            return Json();
                        }
                    }
                    // UTF-8 encode the BMP code point (surrogate pairs
                    // are passed through as two 3-byte sequences).
                    if (code < 0x80) {
                        s += static_cast<char>(code);
                    } else if (code < 0x800) {
                        s += static_cast<char>(0xC0 | (code >> 6));
                        s += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        s += static_cast<char>(0xE0 | (code >> 12));
                        s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        s += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    fail("unknown escape sequence");
                    return Json();
                }
            } else {
                s += c;
            }
        }
        fail("unterminated string");
        return Json();
    }

    Json parseKeyword()
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return Json(true);
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return Json(false);
        }
        fail("unknown keyword");
        return Json();
    }

    Json parseNull()
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return Json(nullptr);
        }
        fail("unknown keyword");
        return Json();
    }

    Json parseNumber()
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start) {
            fail("expected a JSON value");
            return Json();
        }
        pos_ += static_cast<std::size_t>(end - start);
        return Json(v);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    void fail(const std::string &msg)
    {
        if (failed_)
            return;
        failed_ = true;
        if (!error_)
            return;
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        *error_ = msg + " at line " + std::to_string(line) + ", column " +
            std::to_string(col);
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    bool failed_ = false;
};

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        formatNumber(out, number_);
        break;
      case Type::String:
        escapeString(out, string_);
        break;
      case Type::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        bool first = true;
        for (const Json &v : array_) {
            if (!first)
                out += ',';
            first = false;
            if (indent > 0)
                newlineIndent(out, indent, depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Type::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        bool first = true;
        for (const auto &[k, v] : object_) {
            if (!first)
                out += ',';
            first = false;
            if (indent > 0)
                newlineIndent(out, indent, depth + 1);
            escapeString(out, k);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (indent > 0)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p(text, error);
    return p.run();
}

} // namespace ccache
