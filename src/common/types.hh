/**
 * @file
 * Fundamental types shared across the Compute Cache simulator.
 */

#ifndef CCACHE_COMMON_TYPES_HH
#define CCACHE_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace ccache {

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycles (core clock domain, 2.66 GHz per Table IV). */
using Cycles = std::uint64_t;

/** Energy in picojoules. */
using EnergyPJ = double;

/** Cache block size in bytes. All caches in the paper use 64 B blocks. */
inline constexpr std::size_t kBlockSize = 64;

/** Page size in bytes (4 KB pages per Section IV-C). */
inline constexpr std::size_t kPageSize = 4096;

/** Number of address bits covered by a 4 KB page offset. */
inline constexpr unsigned kPageOffsetBits = 12;

/** Core clock frequency in Hz (Table IV: 2.66 GHz). */
inline constexpr double kCoreFreqHz = 2.66e9;

/** Convert a cycle count into seconds at the core clock. */
inline constexpr double
cyclesToSeconds(Cycles c)
{
    return static_cast<double>(c) / kCoreFreqHz;
}

/** Identifier of a processor core / ring stop. */
using CoreId = unsigned;

/** Cache levels in the hierarchy. */
enum class CacheLevel : unsigned { L1 = 1, L2 = 2, L3 = 3 };

/** Human-readable name of a cache level. */
const char *toString(CacheLevel level);

} // namespace ccache

#endif // CCACHE_COMMON_TYPES_HH
