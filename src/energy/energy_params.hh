/**
 * @file
 * Energy parameter tables for the Compute Cache evaluation.
 *
 * The per-access cache numbers transcribe the paper directly:
 *  - Table I: per-read H-tree (cache-ic) vs bit-array (cache-access)
 *    energy for L1-D / L2 / L3-slice;
 *  - Table V: energy per 64-byte cache block for every operation at every
 *    cache level.
 * Core, NoC and DRAM energies are McPAT-derived constants calibrated so
 * the microbenchmark energy breakdowns (Figure 7b) reproduce the paper's
 * component proportions.
 */

#ifndef CCACHE_ENERGY_ENERGY_PARAMS_HH
#define CCACHE_ENERGY_ENERGY_PARAMS_HH

#include "common/types.hh"
#include "sram/subarray_params.hh"

namespace ccache::energy {

/** Cache operations with per-level energy entries (Table V rows). */
enum class CacheOp {
    Write,
    Read,
    Cmp,
    Copy,
    Search,
    Not,
    Logic,   ///< and / or / xor / nor
    Buz,     ///< zeroing; paper folds it into the copy row
    Clmul,   ///< carryless multiply; costed as cmp per Section VI-C
};

const char *toString(CacheOp op);

/** Map an sram::BitlineOp onto its Table V cost row. */
CacheOp cacheOpFor(sram::BitlineOp op);

/** Per-read energy split of one cache level (Table I row). */
struct CacheReadSplit
{
    EnergyPJ htree;   ///< in-cache interconnect ("cache-ic")
    EnergyPJ access;  ///< bit-array access ("cache-access")

    EnergyPJ total() const { return htree + access; }
};

/** Full energy parameter set for the modeled system. */
struct EnergyParams
{
    /** Table I. @{ */
    CacheReadSplit l1Read{179.0, 116.0};
    CacheReadSplit l2Read{675.0, 127.0};
    CacheReadSplit l3Read{1985.0, 467.0};
    /** @} */

    /**
     * Table V: energy (pJ) per 64-byte block. Indexed [level][op].
     * The in-place CC operations avoid most of the H-tree transfer, which
     * is why cmp at L3 costs 840 pJ against a 2452 pJ read.
     */
    EnergyPJ cacheOpEnergy(CacheLevel level, CacheOp op) const;

    /** Fraction of a cache op's energy spent in the H-tree interconnect
     *  (rather than the bit array), used to split Table V entries into
     *  the cache-ic / cache-access components of Figure 7b. */
    double htreeFraction(CacheLevel level, CacheOp op) const;

    /**
     * Core energy per committed instruction, in pJ. McPAT-style constant
     * for a 2.66 GHz out-of-order core: fetch/decode/rename/ROB dominate,
     * which is why Figure 3 attributes ~75% of a scalar kernel's energy
     * to instruction processing.
     */
    EnergyPJ corePerInstr = 750.0;

    /** Extra core energy for a vector (SIMD or CC) instruction. */
    EnergyPJ coreVectorExtra = 250.0;

    /** Ring NoC energy per 8-byte flit per hop (link + router). */
    EnergyPJ nocPerFlitHop = 62.0;

    /** DRAM access energy per 64-byte block. */
    EnergyPJ dramPerBlock = 15000.0;

    /** Static power in watts. @{ */
    double coreStaticW = 0.80;    ///< per core
    double uncoreStaticW = 2.20;  ///< caches + ring, whole chip
    /** @} */

    /** Near-place logic unit energy per 64-byte operation (pJ): operands
     *  cross the H-tree twice plus the logic-unit datapath. */
    EnergyPJ nearPlaceLogicPerBlock = 180.0;

    /** ECC logic-unit check of one 64-byte block (pJ): eight (72,64)
     *  SECDED syndrome computations plus the correction mux
     *  (Section IV-I alternative 1). */
    EnergyPJ eccCheckPerBlock = 90.0;

    /** Parameters for the parallel tag-data access ablation:
     *  Section IV-C cites 4.7x L1 read energy for parallel access. */
    double parallelTagDataFactor = 4.7;
};

} // namespace ccache::energy

#endif // CCACHE_ENERGY_ENERGY_PARAMS_HH
