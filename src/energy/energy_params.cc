#include "energy/energy_params.hh"

#include "common/logging.hh"

namespace ccache::energy {

namespace {

/** Table V of the paper, energy in pJ per 64-byte cache block. */
struct TableVRow
{
    EnergyPJ write, read, cmp, copy, search, notOp, logic;
};

TableVRow
tableV(CacheLevel level)
{
    switch (level) {
      case CacheLevel::L3:
        return {2852.0, 2452.0, 840.0, 1340.0, 3692.0, 1340.0, 1672.0};
      case CacheLevel::L2:
        return {1154.0, 802.0, 242.0, 608.0, 1396.0, 608.0, 704.0};
      case CacheLevel::L1:
        return {375.0, 295.0, 186.0, 324.0, 561.0, 324.0, 387.0};
    }
    CC_PANIC("unknown cache level");
}

} // namespace

const char *
toString(CacheOp op)
{
    switch (op) {
      case CacheOp::Write: return "write";
      case CacheOp::Read: return "read";
      case CacheOp::Cmp: return "cmp";
      case CacheOp::Copy: return "copy";
      case CacheOp::Search: return "search";
      case CacheOp::Not: return "not";
      case CacheOp::Logic: return "logic";
      case CacheOp::Buz: return "buz";
      case CacheOp::Clmul: return "clmul";
    }
    return "?";
}

CacheOp
cacheOpFor(sram::BitlineOp op)
{
    using sram::BitlineOp;
    switch (op) {
      case BitlineOp::Read: return CacheOp::Read;
      case BitlineOp::Write: return CacheOp::Write;
      case BitlineOp::And:
      case BitlineOp::Nor:
      case BitlineOp::Or:
      case BitlineOp::Xor:
        return CacheOp::Logic;
      case BitlineOp::Not: return CacheOp::Not;
      case BitlineOp::Copy: return CacheOp::Copy;
      case BitlineOp::Buz: return CacheOp::Buz;
      case BitlineOp::Cmp: return CacheOp::Cmp;
      case BitlineOp::Search: return CacheOp::Search;
      case BitlineOp::Clmul: return CacheOp::Clmul;
      // Bit-serial steps are logic-class activations; the extra
      // single-row sense of sub/cmp steps is folded into the same row
      // (the sense amps stay local, nothing crosses the H-tree).
      case BitlineOp::AddStep:
      case BitlineOp::SubStep:
      case BitlineOp::CmpStep:
        return CacheOp::Logic;
    }
    CC_PANIC("unknown bit-line op");
}

EnergyPJ
EnergyParams::cacheOpEnergy(CacheLevel level, CacheOp op) const
{
    TableVRow row = tableV(level);
    switch (op) {
      case CacheOp::Write: return row.write;
      case CacheOp::Read: return row.read;
      case CacheOp::Cmp: return row.cmp;
      case CacheOp::Copy: return row.copy;
      case CacheOp::Search: return row.search;
      case CacheOp::Not: return row.notOp;
      case CacheOp::Logic: return row.logic;
      // The paper folds zeroing into the copy row and costs clmul like
      // the other 1.5x comparison-class ops (Section VI-C).
      case CacheOp::Buz: return row.copy;
      case CacheOp::Clmul: return row.cmp;
    }
    CC_PANIC("unknown cache op");
}

double
EnergyPJReadHtreeFraction(const EnergyParams &p, CacheLevel level)
{
    const CacheReadSplit &split = level == CacheLevel::L1 ? p.l1Read
        : level == CacheLevel::L2 ? p.l2Read
                                  : p.l3Read;
    return split.htree / split.total();
}

double
EnergyParams::htreeFraction(CacheLevel level, CacheOp op) const
{
    switch (op) {
      case CacheOp::Read:
      case CacheOp::Write:
        // Baseline accesses move the block over the H-tree: Table I split.
        return EnergyPJReadHtreeFraction(*this, level);
      case CacheOp::Search:
        // Search = in-place cmp + a key write that crosses the H-tree;
        // attribute the write portion's split and none for the cmp.
        {
            EnergyPJ write = cacheOpEnergy(level, CacheOp::Write);
            EnergyPJ total = cacheOpEnergy(level, CacheOp::Search);
            return EnergyPJReadHtreeFraction(*this, level) * write / total;
        }
      default:
        // In-place ops only send the command over the address H-tree;
        // a small fixed share models command distribution.
        return 0.10;
    }
}

} // namespace ccache::energy
