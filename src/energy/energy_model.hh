/**
 * @file
 * Component-resolved energy accounting for one simulated execution.
 *
 * Dynamic energy is attributed to the components the paper's Figure 7b
 * plots (core, per-level cache-access, per-level cache-ic, noc, dram);
 * static energy is derived from elapsed cycles and the static power
 * parameters (Figure 7c / 9a / 11 split static into core and uncore).
 */

#ifndef CCACHE_ENERGY_ENERGY_MODEL_HH
#define CCACHE_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "energy/energy_params.hh"

namespace ccache::energy {

/** Dynamic-energy components in pJ. */
struct EnergyBreakdown
{
    EnergyPJ core = 0.0;

    EnergyPJ l1Access = 0.0;
    EnergyPJ l1Ic = 0.0;
    EnergyPJ l2Access = 0.0;
    EnergyPJ l2Ic = 0.0;
    EnergyPJ l3Access = 0.0;
    EnergyPJ l3Ic = 0.0;

    EnergyPJ noc = 0.0;
    EnergyPJ dram = 0.0;

    EnergyPJ cacheAccess() const { return l1Access + l2Access + l3Access; }
    EnergyPJ cacheIc() const { return l1Ic + l2Ic + l3Ic; }

    /** Everything that is not core: the paper's "data movement". */
    EnergyPJ dataMovement() const
    {
        return cacheAccess() + cacheIc() + noc + dram;
    }

    EnergyPJ dynamicTotal() const { return core + dataMovement(); }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
};

/** Static + dynamic totals for the Figure 7c style plots. */
struct EnergyTotals
{
    EnergyPJ coreDynamic = 0.0;
    EnergyPJ uncoreDynamic = 0.0;
    EnergyPJ coreStatic = 0.0;
    EnergyPJ uncoreStatic = 0.0;

    EnergyPJ total() const
    {
        return coreDynamic + uncoreDynamic + coreStatic + uncoreStatic;
    }
};

/** Accumulates energy events during a simulation. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = EnergyParams{});

    const EnergyParams &params() const { return params_; }

    /** Charge a cache operation from the Table V cost model, split into
     *  access and interconnect components. */
    void chargeCacheOp(CacheLevel level, CacheOp op,
                       std::uint64_t blocks = 1);

    /** Charge @p n scalar instructions through the core pipeline. */
    void chargeInstructions(std::uint64_t n);

    /** Charge @p n vector (SIMD or CC) instructions. */
    void chargeVectorInstructions(std::uint64_t n);

    /** Charge a NoC transfer of @p bytes over @p hops ring hops. */
    void chargeNoc(std::uint64_t bytes, unsigned hops);

    /** Charge a DRAM block access. */
    void chargeDram(std::uint64_t blocks = 1);

    /** Charge the near-place logic unit for @p blocks operations. */
    void chargeNearPlaceLogic(std::uint64_t blocks);

    /** Direct component charges for model extensions. @{ */
    void addCore(EnergyPJ pj) { dyn_.core += pj; }
    void addCacheAccess(CacheLevel level, EnergyPJ pj);
    void addCacheIc(CacheLevel level, EnergyPJ pj);
    /** @} */

    const EnergyBreakdown &dynamic() const { return dyn_; }

    /** Static + dynamic totals after @p elapsed cycles with @p cores
     *  active cores. @p uncore_fraction scales the chip-wide uncore
     *  static power to the share attributable to this experiment (one
     *  active core of eight owns 1/8 of the caches and ring). */
    EnergyTotals totals(Cycles elapsed, unsigned cores = 1,
                        double uncore_fraction = 1.0) const;

    void reset() { dyn_ = EnergyBreakdown{}; }

    /** One line per component, for dumps and EXPERIMENTS.md tables. */
    std::string report() const;

  private:
    /** Per-(level, op) Table V cost, precomputed at construction:
     *  chargeCacheOp runs once per simulated cache access, and the
     *  switch-ladder lookups dominate it. The cached values feed the
     *  exact arithmetic the uncached path used, so charged energies are
     *  bit-identical (DESIGN.md §13). */
    struct OpCost
    {
        EnergyPJ perBlock;
        double icFrac;
    };
    static constexpr std::size_t kLevels = 3;
    static constexpr std::size_t kOps =
        static_cast<std::size_t>(CacheOp::Clmul) + 1;

    EnergyParams params_;
    EnergyBreakdown dyn_;
    OpCost opCost_[kLevels][kOps];
};

} // namespace ccache::energy

#endif // CCACHE_ENERGY_ENERGY_MODEL_HH
