#include "energy/energy_model.hh"

#include <sstream>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::energy {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    core += other.core;
    l1Access += other.l1Access;
    l1Ic += other.l1Ic;
    l2Access += other.l2Access;
    l2Ic += other.l2Ic;
    l3Access += other.l3Access;
    l3Ic += other.l3Ic;
    noc += other.noc;
    dram += other.dram;
    return *this;
}

EnergyModel::EnergyModel(const EnergyParams &params) : params_(params)
{
    for (CacheLevel level :
         {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3}) {
        for (std::size_t o = 0; o < kOps; ++o) {
            CacheOp op = static_cast<CacheOp>(o);
            OpCost &c =
                opCost_[static_cast<unsigned>(level) - 1][o];
            c.perBlock = params_.cacheOpEnergy(level, op);
            c.icFrac = params_.htreeFraction(level, op);
        }
    }
}

void
EnergyModel::addCacheAccess(CacheLevel level, EnergyPJ pj)
{
    switch (level) {
      case CacheLevel::L1: dyn_.l1Access += pj; break;
      case CacheLevel::L2: dyn_.l2Access += pj; break;
      case CacheLevel::L3: dyn_.l3Access += pj; break;
    }
}

void
EnergyModel::addCacheIc(CacheLevel level, EnergyPJ pj)
{
    switch (level) {
      case CacheLevel::L1: dyn_.l1Ic += pj; break;
      case CacheLevel::L2: dyn_.l2Ic += pj; break;
      case CacheLevel::L3: dyn_.l3Ic += pj; break;
    }
}

void
EnergyModel::chargeCacheOp(CacheLevel level, CacheOp op,
                           std::uint64_t blocks)
{
    const OpCost &c = opCost_[static_cast<unsigned>(level) - 1]
                             [static_cast<std::size_t>(op)];
    EnergyPJ per_block = c.perBlock;
    double ic_frac = c.icFrac;
    EnergyPJ total = per_block * static_cast<double>(blocks);
    addCacheIc(level, total * ic_frac);
    addCacheAccess(level, total * (1.0 - ic_frac));
}

void
EnergyModel::chargeInstructions(std::uint64_t n)
{
    dyn_.core += params_.corePerInstr * static_cast<double>(n);
}

void
EnergyModel::chargeVectorInstructions(std::uint64_t n)
{
    dyn_.core += (params_.corePerInstr + params_.coreVectorExtra) *
        static_cast<double>(n);
}

void
EnergyModel::chargeNoc(std::uint64_t bytes, unsigned hops)
{
    std::uint64_t flits = divCeil(bytes, 8);
    dyn_.noc += params_.nocPerFlitHop * static_cast<double>(flits) *
        static_cast<double>(hops);
}

void
EnergyModel::chargeDram(std::uint64_t blocks)
{
    dyn_.dram += params_.dramPerBlock * static_cast<double>(blocks);
}

void
EnergyModel::chargeNearPlaceLogic(std::uint64_t blocks)
{
    // The logic unit sits at the cache controller; its datapath energy is
    // attributed to the cache access component of the level it serves.
    dyn_.l3Access +=
        params_.nearPlaceLogicPerBlock * static_cast<double>(blocks);
}

EnergyTotals
EnergyModel::totals(Cycles elapsed, unsigned cores,
                    double uncore_fraction) const
{
    EnergyTotals t;
    t.coreDynamic = dyn_.core;
    t.uncoreDynamic = dyn_.dataMovement();
    double seconds = cyclesToSeconds(elapsed);
    t.coreStatic = params_.coreStaticW * cores * seconds * 1e12;
    t.uncoreStatic =
        params_.uncoreStaticW * uncore_fraction * seconds * 1e12;
    return t;
}

std::string
EnergyModel::report() const
{
    std::ostringstream os;
    os << "core          " << dyn_.core << " pJ\n"
       << "l1-access     " << dyn_.l1Access << " pJ\n"
       << "l1-ic         " << dyn_.l1Ic << " pJ\n"
       << "l2-access     " << dyn_.l2Access << " pJ\n"
       << "l2-ic         " << dyn_.l2Ic << " pJ\n"
       << "l3-access     " << dyn_.l3Access << " pJ\n"
       << "l3-ic         " << dyn_.l3Ic << " pJ\n"
       << "noc           " << dyn_.noc << " pJ\n"
       << "dram          " << dyn_.dram << " pJ\n"
       << "dynamic-total " << dyn_.dynamicTotal() << " pJ\n";
    return os.str();
}

} // namespace ccache::energy
