/**
 * @file
 * Operand-locality-aware memory allocator (the Section IV-C future-work
 * extension: "Compiler and dynamic memory allocators could be extended
 * to optimize for this property").
 *
 * The allocator hands out buffers from a simulated address space such
 * that all buffers of one allocation *group* share their 4 KB page
 * offset — the software contract that guarantees in-place operand
 * locality at every cache level (Table III). Buffers in different
 * groups pack densely as a normal bump allocator would.
 */

#ifndef CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH
#define CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ccache::geometry {

/** Identifier of a co-located operand group. */
using GroupId = std::uint32_t;

/**
 * Bump allocator with page-offset groups and buffer recycling.
 *
 * free() returns a buffer to an address-ordered free list (adjacent
 * ranges coalesce); subsequent allocations are satisfied first-fit
 * from the free list — at the lowest address whose page offset can
 * satisfy the group constraint — before falling back to the bump
 * pointer. First-fit by address is deterministic: the same
 * allocate/free sequence always yields the same addresses, which the
 * serving layer's churn (one buffer set per request) depends on
 * (DESIGN.md §8, §11).
 */
class LocalityAllocator
{
  public:
    /** @param base  start of the managed region (page aligned).
     *  @param size  bytes managed. */
    LocalityAllocator(Addr base, std::size_t size);

    /**
     * Allocate @p bytes (rounded up to a 64-byte multiple) such that the
     * returned address shares its page offset with every earlier
     * allocation in @p group. The first allocation of a group defines
     * the group's offset (the current bump pointer's offset).
     *
     * Throws FatalError when the region is exhausted.
     */
    Addr allocate(std::size_t bytes, GroupId group);

    /** Plain allocation with no locality constraint. */
    Addr allocate(std::size_t bytes);

    /**
     * Non-throwing variants: return std::nullopt when the region cannot
     * satisfy the request, leaving the allocator untouched. The serving
     * layer uses these so heap exhaustion degrades into a structured
     * `no_capacity` admission rejection instead of killing the run
     * (DESIGN.md §12). @{
     */
    std::optional<Addr> tryAllocate(std::size_t bytes, GroupId group);
    std::optional<Addr> tryAllocate(std::size_t bytes);
    /** @} */

    /**
     * Return [addr, addr+bytes) (rounded up to a 64-byte multiple, as
     * allocate() rounded it) to the free list for reuse. @p addr must
     * be block-aligned and inside the managed region; freeing a range
     * that overlaps an already-free range is fatal (double free).
     */
    void free(Addr addr, std::size_t bytes);

    /** Bytes handed out (including alignment padding). */
    std::size_t used() const { return next_ - base_; }

    /** Bytes lost to page-offset alignment padding. */
    std::size_t padding() const { return padding_; }

    /** Bytes currently sitting on the free list. */
    std::size_t freeBytes() const { return freeBytes_; }

    /** Allocations satisfied from recycled ranges. */
    std::size_t reuses() const { return reuses_; }

    /** The page offset assigned to @p group (first allocation decides);
     *  ~0 if the group has not allocated yet. */
    Addr groupOffset(GroupId group) const;

  private:
    /** First-fit search of the free list for @p bytes whose address is
     *  congruent to @p offset mod page size (~0 = no constraint).
     *  Returns ~0 when nothing fits; otherwise carves and returns the
     *  block-aligned address. */
    Addr carveFree(std::size_t bytes, Addr offset);

    Addr base_;
    std::size_t size_;
    Addr next_;
    std::size_t padding_ = 0;
    std::size_t freeBytes_ = 0;
    std::size_t reuses_ = 0;
    std::unordered_map<GroupId, Addr> groupOffset_;
    std::map<Addr, std::size_t> freeList_;   ///< start -> length
};

} // namespace ccache::geometry

#endif // CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH
