/**
 * @file
 * Operand-locality-aware memory allocator (the Section IV-C future-work
 * extension: "Compiler and dynamic memory allocators could be extended
 * to optimize for this property").
 *
 * The allocator hands out buffers from a simulated address space such
 * that all buffers of one allocation *group* share their 4 KB page
 * offset — the software contract that guarantees in-place operand
 * locality at every cache level (Table III). Buffers in different
 * groups pack densely as a normal bump allocator would.
 */

#ifndef CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH
#define CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ccache::geometry {

/** Identifier of a co-located operand group. */
using GroupId = std::uint32_t;

/** Bump allocator with page-offset groups. */
class LocalityAllocator
{
  public:
    /** @param base  start of the managed region (page aligned).
     *  @param size  bytes managed. */
    LocalityAllocator(Addr base, std::size_t size);

    /**
     * Allocate @p bytes (rounded up to a 64-byte multiple) such that the
     * returned address shares its page offset with every earlier
     * allocation in @p group. The first allocation of a group defines
     * the group's offset (the current bump pointer's offset).
     *
     * Throws FatalError when the region is exhausted.
     */
    Addr allocate(std::size_t bytes, GroupId group);

    /** Plain allocation with no locality constraint. */
    Addr allocate(std::size_t bytes);

    /** Bytes handed out (including alignment padding). */
    std::size_t used() const { return next_ - base_; }

    /** Bytes lost to page-offset alignment padding. */
    std::size_t padding() const { return padding_; }

    /** The page offset assigned to @p group (first allocation decides);
     *  ~0 if the group has not allocated yet. */
    Addr groupOffset(GroupId group) const;

  private:
    Addr base_;
    std::size_t size_;
    Addr next_;
    std::size_t padding_ = 0;
    std::unordered_map<GroupId, Addr> groupOffset_;
};

} // namespace ccache::geometry

#endif // CCACHE_GEOMETRY_LOCALITY_ALLOCATOR_HH
