/**
 * @file
 * Operand locality predicates and the page-alignment software rule
 * (paper Section IV-C).
 *
 * In-place bit-line computation requires operands to share bit-lines.
 * The software-visible contract is: if two operands have the same 4 KB
 * page offset (low 12 address bits equal), they are guaranteed operand
 * locality on every cache geometry whose minMatchBits() <= 12 — which
 * covers all three levels the paper models (Table III).
 */

#ifndef CCACHE_GEOMETRY_OPERAND_LOCALITY_HH
#define CCACHE_GEOMETRY_OPERAND_LOCALITY_HH

#include <vector>

#include "common/types.hh"
#include "geometry/cache_geometry.hh"

namespace ccache::geometry {

/** True iff the low @p nbits of both addresses are equal. */
bool lowBitsMatch(Addr a, Addr b, unsigned nbits);

/** The software rule: same 4 KB page offset. */
bool pageAligned(Addr a, Addr b);

/** True iff @p geom guarantees in-place compute between @p a and @p b. */
bool haveOperandLocality(const CacheGeometry &geom, Addr a, Addr b);

/** True iff all addresses in @p operands are pairwise locality-compatible
 *  on @p geom. */
bool haveOperandLocality(const CacheGeometry &geom,
                         const std::vector<Addr> &operands);

/**
 * True iff the page-alignment rule is sufficient for @p geom: programs
 * compiled for a 12-bit alignment requirement remain portable to any
 * geometry requiring 12 or fewer matching bits (Section IV-C,
 * "Software requirement").
 */
bool pageAlignmentSufficient(const CacheGeometry &geom);

/**
 * Given a desired operand, return the next address >= @p hint whose page
 * offset equals that of @p anchor — what a locality-aware allocator would
 * hand out.
 */
Addr alignToOperand(Addr anchor, Addr hint);

} // namespace ccache::geometry

#endif // CCACHE_GEOMETRY_OPERAND_LOCALITY_HH
