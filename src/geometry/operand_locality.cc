#include "geometry/operand_locality.hh"

#include "common/bit_util.hh"

namespace ccache::geometry {

bool
lowBitsMatch(Addr a, Addr b, unsigned nbits)
{
    if (nbits == 0)
        return true;
    if (nbits >= 64)
        return a == b;
    Addr mask = (Addr{1} << nbits) - 1;
    return (a & mask) == (b & mask);
}

bool
pageAligned(Addr a, Addr b)
{
    return lowBitsMatch(a, b, kPageOffsetBits);
}

bool
haveOperandLocality(const CacheGeometry &geom, Addr a, Addr b)
{
    // Blocks must share bit-lines *and* corresponding bytes must land on
    // the same columns, so the within-block offsets must also be equal —
    // that is why Table III counts the block-offset bits in the minimum
    // matching bits.
    return geom.sameBlockPartition(a, b) &&
        lowBitsMatch(a, b, static_cast<unsigned>(geom.blockOffsetBits()));
}

bool
haveOperandLocality(const CacheGeometry &geom,
                    const std::vector<Addr> &operands)
{
    for (std::size_t i = 1; i < operands.size(); ++i)
        if (!haveOperandLocality(geom, operands[0], operands[i]))
            return false;
    return true;
}

bool
pageAlignmentSufficient(const CacheGeometry &geom)
{
    return geom.minMatchBits() <= kPageOffsetBits;
}

Addr
alignToOperand(Addr anchor, Addr hint)
{
    Addr offset = anchor & (kPageSize - 1);
    Addr base = alignDown(hint, kPageSize);
    Addr candidate = base + offset;
    if (candidate < hint)
        candidate += kPageSize;
    return candidate;
}

} // namespace ccache::geometry
