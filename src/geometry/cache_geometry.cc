#include "geometry/cache_geometry.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::geometry {

CacheGeometryParams
CacheGeometryParams::l1d()
{
    CacheGeometryParams p;
    p.name = "L1-D";
    p.sizeBytes = 32 * 1024;
    p.ways = 8;
    p.banks = 2;
    p.blockPartitionsPerBank = 2;
    return p;
}

CacheGeometryParams
CacheGeometryParams::l2()
{
    CacheGeometryParams p;
    p.name = "L2";
    p.sizeBytes = 256 * 1024;
    p.ways = 8;
    p.banks = 8;
    p.blockPartitionsPerBank = 2;
    return p;
}

CacheGeometryParams
CacheGeometryParams::l3Slice()
{
    CacheGeometryParams p;
    p.name = "L3-slice";
    p.sizeBytes = 2 * 1024 * 1024;
    p.ways = 16;
    p.banks = 16;
    p.blockPartitionsPerBank = 4;
    return p;
}

CacheGeometry::CacheGeometry(const CacheGeometryParams &params)
    : params_(params)
{
    if (params_.sizeBytes == 0 || params_.ways == 0 || params_.banks == 0 ||
        params_.blockPartitionsPerBank == 0 || params_.blocksPerRow == 0) {
        CC_FATAL("cache geometry '", params_.name,
                 "' has a zero-valued parameter");
    }
    if (params_.sizeBytes % (kBlockSize * params_.ways) != 0)
        CC_FATAL("cache size not divisible into sets");

    numBlocks_ = params_.sizeBytes / kBlockSize;
    numSets_ = numBlocks_ / params_.ways;
    blockBits_ = log2Exact(kBlockSize);

    if (!isPowerOfTwo(numSets_) || !isPowerOfTwo(params_.banks) ||
        !isPowerOfTwo(params_.blockPartitionsPerBank) ||
        !isPowerOfTwo(params_.blocksPerRow)) {
        CC_FATAL("geometry '", params_.name,
                 "' parameters must be powers of two");
    }

    bankBits_ = log2Exact(params_.banks);
    bpBits_ = log2Exact(params_.blockPartitionsPerBank);
    setBits_ = log2Exact(numSets_);

    if (setBits_ < bankBits_ + bpBits_)
        CC_FATAL("geometry '", params_.name, "': set index (", setBits_,
                 " bits) too small for bank (", bankBits_, ") + BP (",
                 bpBits_, ") selection");

    if (params_.blockPartitionsPerBank % params_.blocksPerRow != 0)
        CC_FATAL("partitions per bank must be a multiple of blocks per row");
    subarraysPerBank_ =
        params_.blockPartitionsPerBank / params_.blocksPerRow;

    rowsPerSubarray_ = blocksPerPartition() / 1;
    if (!isPowerOfTwo(rowsPerSubarray_))
        CC_FATAL("derived rows per sub-array (", rowsPerSubarray_,
                 ") is not a power of two");
}

bool
CacheGeometry::sameBlockPartition(Addr a, Addr b) const
{
    AddrFields fa = decode(a);
    AddrFields fb = decode(b);
    return fa.bank == fb.bank && fa.bp == fb.bp;
}

sram::SubArrayParams
CacheGeometry::subArrayParams() const
{
    sram::SubArrayParams sp;
    sp.rows = rowsPerSubarray_;
    sp.cols = params_.blocksPerRow * 8 * kBlockSize;
    return sp;
}

} // namespace ccache::geometry
