/**
 * @file
 * Operand-locality-aware cache geometry (paper Section IV-C, Figure 5).
 *
 * The geometry makes two design choices that let software guarantee
 * operand locality with nothing more than page alignment:
 *
 *  1. all ways of a set map to the same block partition, so locality does
 *     not depend on runtime way selection;
 *  2. the low set-index bits select the bank and the block partition, so
 *     two addresses whose low (blockOffset + bank + bp) bits match are
 *     guaranteed to share bit-lines.
 *
 * Table III of the paper (minimum address bits that must match) is derived
 * from this geometry rather than hard-coded.
 */

#ifndef CCACHE_GEOMETRY_CACHE_GEOMETRY_HH
#define CCACHE_GEOMETRY_CACHE_GEOMETRY_HH

#include <cstddef>
#include <string>

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "sram/subarray_params.hh"

namespace ccache::geometry {

/** Static description of one cache's physical organization. */
struct CacheGeometryParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    std::size_t ways = 8;
    std::size_t banks = 2;
    std::size_t blockPartitionsPerBank = 2;

    /** 64-byte blocks stored side-by-side in one sub-array row. */
    std::size_t blocksPerRow = 1;

    /** Per Table IV / Section VI-C. @{ */
    static CacheGeometryParams l1d();
    static CacheGeometryParams l2();
    static CacheGeometryParams l3Slice();
    /** @} */
};

/** Physical placement of a cache block. */
struct BlockPlace
{
    std::size_t bank;            ///< bank within the cache
    std::size_t subarray;        ///< sub-array within the bank
    std::size_t partition;       ///< block partition within the sub-array
    std::size_t row;             ///< word-line within the sub-array

    /** Globally comparable block-partition id within the cache. */
    std::size_t globalPartition = 0;

    bool operator==(const BlockPlace &) const = default;
};

/** Fields of a decomposed physical address (Figure 5(b) decoding). */
struct AddrFields
{
    Addr blockOffset;
    std::size_t bank;
    std::size_t bp;      ///< block partition selector within the bank
    std::size_t set;     ///< full set index
    Addr tag;
};

/** Derived, validated cache geometry. */
class CacheGeometry
{
  public:
    explicit CacheGeometry(const CacheGeometryParams &params);

    const CacheGeometryParams &params() const { return params_; }

    std::size_t numSets() const { return numSets_; }
    std::size_t numBlocks() const { return numBlocks_; }
    std::size_t setIndexBits() const { return setBits_; }
    std::size_t bankBits() const { return bankBits_; }
    std::size_t bpBits() const { return bpBits_; }
    std::size_t blockOffsetBits() const { return blockBits_; }

    /** Sub-arrays per bank (each holds blocksPerRow partitions). */
    std::size_t subarraysPerBank() const { return subarraysPerBank_; }

    /** Total sub-arrays in the cache. */
    std::size_t totalSubarrays() const
    {
        return subarraysPerBank_ * params_.banks;
    }

    /** Word-lines per sub-array, derived from capacity. */
    std::size_t rowsPerSubarray() const { return rowsPerSubarray_; }

    /** Total block partitions = banks x partitions-per-bank. */
    std::size_t totalBlockPartitions() const
    {
        return params_.banks * params_.blockPartitionsPerBank;
    }

    /** Cache blocks stored per block partition. */
    std::size_t blocksPerPartition() const
    {
        return numBlocks_ / totalBlockPartitions();
    }

    /**
     * Minimum low address bits that must be equal for two operands to be
     * guaranteed the same block partition (Table III):
     * blockOffsetBits + bankBits + bpBits.
     */
    unsigned minMatchBits() const
    {
        return static_cast<unsigned>(blockBits_ + bankBits_ + bpBits_);
    }

    /**
     * Decompose @p addr per the Figure 5(b) decoding. Inline: this sits
     * on the hit path of every cache access, so it must compile down to
     * a handful of shifts and masks.
     */
    AddrFields decode(Addr addr) const
    {
        AddrFields f;
        f.blockOffset = bits(addr, 0, static_cast<unsigned>(blockBits_));
        Addr block_addr = addr >> blockBits_;
        f.set = static_cast<std::size_t>(
            bits(block_addr, 0, static_cast<unsigned>(setBits_)));
        // Figure 5(b): low set-index bits choose bank then block partition.
        f.bank = static_cast<std::size_t>(
            bits(block_addr, 0, static_cast<unsigned>(bankBits_)));
        f.bp = static_cast<std::size_t>(
            bits(block_addr, static_cast<unsigned>(bankBits_),
                 static_cast<unsigned>(bpBits_)));
        f.tag = block_addr >> setBits_;
        return f;
    }

    /** Set index of @p addr. */
    std::size_t setIndex(Addr addr) const
    {
        return static_cast<std::size_t>(
            bits(addr >> blockBits_, 0, static_cast<unsigned>(setBits_)));
    }

    /** Physical placement of (set, way): all ways of a set land in the
     *  same block partition, at consecutive rows. Inline: the CC
     *  scheduler derives a placement per block-op operand. */
    BlockPlace place(std::size_t set, std::size_t way) const
    {
        CC_ASSERT(set < numSets_, "set ", set, " out of range");
        CC_ASSERT(way < params_.ways, "way ", way, " out of range");

        BlockPlace p;
        p.bank = set & ((std::size_t{1} << bankBits_) - 1);
        std::size_t bp = (set >> bankBits_) &
            ((std::size_t{1} << bpBits_) - 1);
        p.subarray = bp / params_.blocksPerRow;
        p.partition = bp % params_.blocksPerRow;

        // Sets sharing a (bank, bp) stack vertically; all ways of a set
        // are consecutive rows within the partition (design choice 1).
        std::size_t local_set = set >> (bankBits_ + bpBits_);
        p.row = local_set * params_.ways + way;
        CC_ASSERT(p.row < rowsPerSubarray_, "derived row ", p.row,
                  " exceeds sub-array rows ", rowsPerSubarray_);

        p.globalPartition = p.bank * params_.blockPartitionsPerBank + bp;
        return p;
    }

    /** True iff the two block addresses map to the same block partition
     *  (in-place compute is possible between them). */
    bool sameBlockPartition(Addr a, Addr b) const;

    /** SubArrayParams matching this geometry (rows/cols derived). */
    sram::SubArrayParams subArrayParams() const;

  private:
    CacheGeometryParams params_;
    std::size_t numSets_;
    std::size_t numBlocks_;
    std::size_t blockBits_;
    std::size_t bankBits_;
    std::size_t bpBits_;
    std::size_t setBits_;
    std::size_t subarraysPerBank_;
    std::size_t rowsPerSubarray_;
};

} // namespace ccache::geometry

#endif // CCACHE_GEOMETRY_CACHE_GEOMETRY_HH
