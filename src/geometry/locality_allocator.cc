#include "geometry/locality_allocator.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "geometry/operand_locality.hh"

namespace ccache::geometry {

LocalityAllocator::LocalityAllocator(Addr base, std::size_t size)
    : base_(base), size_(size), next_(base)
{
    if (!isAligned(base, kPageSize))
        CC_FATAL("allocator base 0x", std::hex, base,
                 " must be page aligned");
    if (size < kPageSize)
        CC_FATAL("allocator region must cover at least one page");
}

Addr
LocalityAllocator::allocate(std::size_t bytes)
{
    bytes = alignUp(bytes, kBlockSize);
    Addr addr = alignUp(next_, kBlockSize);
    if (addr + bytes > base_ + size_)
        CC_FATAL("locality allocator exhausted (", size_, " bytes)");
    padding_ += addr - next_;
    next_ = addr + bytes;
    return addr;
}

Addr
LocalityAllocator::allocate(std::size_t bytes, GroupId group)
{
    bytes = alignUp(bytes, kBlockSize);

    auto it = groupOffset_.find(group);
    if (it == groupOffset_.end()) {
        Addr addr = allocate(bytes);
        groupOffset_.emplace(group, addr & (kPageSize - 1));
        return addr;
    }

    // Advance to the next address with the group's page offset.
    Addr addr = alignToOperand(it->second, alignUp(next_, kBlockSize));
    if (addr + bytes > base_ + size_)
        CC_FATAL("locality allocator exhausted (", size_, " bytes)");
    padding_ += addr - next_;
    next_ = addr + bytes;
    return addr;
}

Addr
LocalityAllocator::groupOffset(GroupId group) const
{
    auto it = groupOffset_.find(group);
    return it == groupOffset_.end() ? ~Addr{0} : it->second;
}

} // namespace ccache::geometry
