#include "geometry/locality_allocator.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"
#include "geometry/operand_locality.hh"

namespace ccache::geometry {

LocalityAllocator::LocalityAllocator(Addr base, std::size_t size)
    : base_(base), size_(size), next_(base)
{
    if (!isAligned(base, kPageSize))
        CC_FATAL("allocator base 0x", std::hex, base,
                 " must be page aligned");
    if (size < kPageSize)
        CC_FATAL("allocator region must cover at least one page");
}

Addr
LocalityAllocator::carveFree(std::size_t bytes, Addr offset)
{
    for (auto it = freeList_.begin(); it != freeList_.end(); ++it) {
        Addr start = it->first;
        std::size_t len = it->second;
        Addr end = start + len;
        // Lowest address in the range honouring the offset constraint
        // (free-list entries are always block-aligned).
        Addr cand = offset == ~Addr{0} ? start
                                       : alignToOperand(offset, start);
        if (cand + bytes > end)
            continue;
        freeList_.erase(it);
        if (cand > start)
            freeList_.emplace(start, cand - start);
        if (cand + bytes < end)
            freeList_.emplace(cand + bytes, end - (cand + bytes));
        freeBytes_ -= bytes;
        ++reuses_;
        return cand;
    }
    return ~Addr{0};
}

std::optional<Addr>
LocalityAllocator::tryAllocate(std::size_t bytes)
{
    bytes = alignUp(bytes, kBlockSize);
    Addr recycled = carveFree(bytes, ~Addr{0});
    if (recycled != ~Addr{0})
        return recycled;
    Addr addr = alignUp(next_, kBlockSize);
    if (addr + bytes > base_ + size_)
        return std::nullopt;
    padding_ += addr - next_;
    next_ = addr + bytes;
    return addr;
}

std::optional<Addr>
LocalityAllocator::tryAllocate(std::size_t bytes, GroupId group)
{
    bytes = alignUp(bytes, kBlockSize);

    auto it = groupOffset_.find(group);
    if (it == groupOffset_.end()) {
        std::optional<Addr> addr = tryAllocate(bytes);
        if (addr)
            groupOffset_.emplace(group, *addr & (kPageSize - 1));
        return addr;
    }

    Addr recycled = carveFree(bytes, it->second);
    if (recycled != ~Addr{0})
        return recycled;

    // Advance to the next address with the group's page offset.
    Addr addr = alignToOperand(it->second, alignUp(next_, kBlockSize));
    if (addr + bytes > base_ + size_)
        return std::nullopt;
    padding_ += addr - next_;
    next_ = addr + bytes;
    return addr;
}

Addr
LocalityAllocator::allocate(std::size_t bytes)
{
    std::optional<Addr> addr = tryAllocate(bytes);
    if (!addr)
        CC_FATAL("locality allocator exhausted (", size_, " bytes)");
    return *addr;
}

Addr
LocalityAllocator::allocate(std::size_t bytes, GroupId group)
{
    std::optional<Addr> addr = tryAllocate(bytes, group);
    if (!addr)
        CC_FATAL("locality allocator exhausted (", size_, " bytes)");
    return *addr;
}

void
LocalityAllocator::free(Addr addr, std::size_t bytes)
{
    bytes = alignUp(bytes, kBlockSize);
    if (!isAligned(addr, kBlockSize))
        CC_FATAL("free of unaligned address 0x", std::hex, addr);
    if (addr < base_ || addr + bytes > next_)
        CC_FATAL("free of 0x", std::hex, addr, std::dec, " +", bytes,
                 " outside the allocated region");
    freeBytes_ += bytes;

    auto next = freeList_.lower_bound(addr);
    if (next != freeList_.end() && addr + bytes > next->first)
        CC_FATAL("double free / overlap at 0x", std::hex, addr);
    if (next != freeList_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second > addr)
            CC_FATAL("double free / overlap at 0x", std::hex, addr);
        // Coalesce with the preceding range when adjacent.
        if (prev->first + prev->second == addr) {
            addr = prev->first;
            bytes += prev->second;
            freeList_.erase(prev);
        }
    }
    if (next != freeList_.end() && addr + bytes == next->first) {
        bytes += next->second;
        freeList_.erase(next);
    }
    freeList_.emplace(addr, bytes);
}

Addr
LocalityAllocator::groupOffset(GroupId group) const
{
    auto it = groupOffset_.find(group);
    return it == groupOffset_.end() ? ~Addr{0} : it->second;
}

} // namespace ccache::geometry
