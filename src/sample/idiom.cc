#include "sample/idiom.hh"

#include <algorithm>
#include <unordered_map>

#include "cc/isa.hh"
#include "common/logging.hh"

namespace ccache::sample {

namespace {

using sim::TraceRecord;

bool
blockAligned(Addr a)
{
    return (a & (kBlockSize - 1)) == 0;
}

/** Per-core run automaton. Buffers the raw records of the run in
 *  progress so a too-short run replays them untouched. */
struct RunState
{
    enum class Mode {
        None,      ///< no run in progress
        FirstRead, ///< one read seen; copy or cmp can begin
        Copy,      ///< (R src+k, W dst+k) pairs; maybe mid-pair
        Cmp,       ///< (R a+k, R b+k) pairs; maybe mid-pair
        Zero,      ///< W base+k stores
    };

    Mode mode = Mode::None;
    Addr src = 0;            ///< first operand base
    Addr dst = 0;            ///< second operand base (copy dst / cmp b)
    std::size_t blocks = 0;  ///< complete block (pairs) matched
    bool midPair = false;    ///< first half of the next pair consumed
    std::vector<TraceRecord> raw;
};

class Converter
{
  public:
    Converter(const ConvertParams &params, ConvertResult &out)
        : params_(params), out_(out)
    {
    }

    void feed(const TraceRecord &rec)
    {
        ++out_.stats.recordsIn;
        if (rec.kind == TraceRecord::Kind::CcOp) {
            // A CC op breaks any run on its core and passes through.
            flush(stateOf(rec.core));
            emit(rec);
            return;
        }
        if (!blockAligned(rec.addr)) {
            flush(stateOf(rec.core));
            emit(rec);
            return;
        }
        step(stateOf(rec.core), rec);
    }

    void finish()
    {
        // Flush in core order for deterministic tail output.
        std::vector<CoreId> cores;
        cores.reserve(states_.size());
        for (auto &[core, st] : states_)
            cores.push_back(core);
        std::sort(cores.begin(), cores.end());
        for (CoreId c : cores)
            flush(states_[c]);
    }

  private:
    RunState &stateOf(CoreId core) { return states_[core]; }

    void emit(const TraceRecord &rec)
    {
        out_.records.push_back(rec);
        ++out_.stats.recordsOut;
    }

    /** Try to extend the run with @p rec; if it does not fit, flush
     *  and retry from the fresh state (at most twice). */
    void step(RunState &st, const TraceRecord &rec)
    {
        if (extend(st, rec))
            return;
        flush(st);
        if (extend(st, rec))
            return;
        // A lone record no automaton state accepts (cannot happen for
        // aligned R/W from Mode::None, but keep the pass total).
        emit(rec);
    }

    bool extend(RunState &st, const TraceRecord &rec)
    {
        bool isRead = rec.kind == TraceRecord::Kind::Read;
        switch (st.mode) {
          case RunState::Mode::None:
            if (isRead) {
                st.mode = RunState::Mode::FirstRead;
                st.src = rec.addr;
            } else {
                st.mode = RunState::Mode::Zero;
                st.src = rec.addr;
                st.blocks = 1;
            }
            st.raw.push_back(rec);
            return true;

          case RunState::Mode::FirstRead:
            if (isRead) {
                st.mode = RunState::Mode::Cmp;
                st.dst = rec.addr;
                st.blocks = 1;
            } else {
                st.mode = RunState::Mode::Copy;
                st.dst = rec.addr;
                st.blocks = 1;
            }
            st.raw.push_back(rec);
            return true;

          case RunState::Mode::Copy:
            if (!st.midPair) {
                if (isRead && rec.addr == next(st.src, st.blocks)) {
                    st.midPair = true;
                    st.raw.push_back(rec);
                    return true;
                }
            } else {
                if (!isRead && rec.addr == next(st.dst, st.blocks)) {
                    st.midPair = false;
                    ++st.blocks;
                    st.raw.push_back(rec);
                    return true;
                }
            }
            return false;

          case RunState::Mode::Cmp:
            if (!st.midPair) {
                if (isRead && rec.addr == next(st.src, st.blocks)) {
                    st.midPair = true;
                    st.raw.push_back(rec);
                    return true;
                }
            } else {
                if (isRead && rec.addr == next(st.dst, st.blocks)) {
                    st.midPair = false;
                    ++st.blocks;
                    st.raw.push_back(rec);
                    return true;
                }
            }
            return false;

          case RunState::Mode::Zero:
            if (!isRead && rec.addr == next(st.src, st.blocks)) {
                ++st.blocks;
                st.raw.push_back(rec);
                return true;
            }
            return false;
        }
        return false;
    }

    static Addr next(Addr base, std::size_t blocks)
    {
        return base + blocks * kBlockSize;
    }

    /**
     * End the run in progress: emit CC instruction(s) when it is long
     * enough and encodes validly, otherwise replay the buffered raw
     * records. A half-consumed pair (midPair) always replays raw at
     * the tail.
     */
    void flush(RunState &st)
    {
        if (st.mode == RunState::Mode::None)
            return;

        bool converted = false;
        if (st.blocks >= params_.minRunBlocks) {
            switch (st.mode) {
              case RunState::Mode::Copy:
                converted = emitChunked(
                    st, cc::kMaxVectorBytes,
                    [](Addr a, Addr b, std::size_t n) {
                        return cc::CcInstruction::copy(a, b, n);
                    });
                if (converted) {
                    ++out_.stats.copyRuns;
                    out_.stats.copyBlocks += st.blocks;
                }
                break;
              case RunState::Mode::Cmp:
                converted = emitChunked(
                    st, cc::kMaxCmpBytes,
                    [](Addr a, Addr b, std::size_t n) {
                        return cc::CcInstruction::cmp(a, b, n);
                    });
                if (converted) {
                    ++out_.stats.cmpRuns;
                    out_.stats.cmpBlocks += st.blocks;
                }
                break;
              case RunState::Mode::Zero:
                converted = emitChunked(
                    st, cc::kMaxVectorBytes,
                    [](Addr a, Addr, std::size_t n) {
                        return cc::CcInstruction::buz(a, n);
                    });
                if (converted) {
                    ++out_.stats.zeroRuns;
                    out_.stats.zeroBlocks += st.blocks;
                }
                break;
              default:
                break;
            }
        }

        if (!converted) {
            for (const TraceRecord &r : st.raw)
                emit(r);
        } else if (st.midPair) {
            // The dangling half pair was not covered by the emitted
            // instructions; replay it raw.
            emit(st.raw.back());
        }

        st.mode = RunState::Mode::None;
        st.blocks = 0;
        st.midPair = false;
        st.raw.clear();
    }

    /** Emit the run as CC records of at most @p cap bytes each. Any
     *  encoding the ISA rejects aborts the conversion (caller then
     *  replays raw) — defensive; aligned block runs always encode. */
    template <typename Build>
    bool emitChunked(RunState &st, std::size_t cap, Build build)
    {
        std::vector<TraceRecord> ccRecs;
        std::size_t capBlocks = cap / kBlockSize;
        std::size_t done = 0;
        while (done < st.blocks) {
            std::size_t n = std::min(capBlocks, st.blocks - done);
            TraceRecord rec;
            rec.kind = TraceRecord::Kind::CcOp;
            rec.core = st.raw.front().core;
            rec.instr = build(next(st.src, done), next(st.dst, done),
                              n * kBlockSize);
            try {
                rec.instr.validate();
            } catch (const FatalError &) {
                return false;
            }
            ccRecs.push_back(rec);
            done += n;
        }
        for (const TraceRecord &r : ccRecs)
            emit(r);
        return true;
    }

    ConvertParams params_;
    ConvertResult &out_;
    std::unordered_map<CoreId, RunState> states_;
};

} // namespace

ConvertResult
convertIdioms(const std::vector<sim::TraceRecord> &records,
              const ConvertParams &params)
{
    ConvertResult out;
    out.records.reserve(records.size());
    Converter conv(params, out);
    for (const TraceRecord &rec : records)
        conv.feed(rec);
    conv.finish();
    return out;
}

} // namespace ccache::sample
