#include "sample/sampled_runner.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/system.hh"

namespace ccache::sample {

namespace {

double
relError(double est, double golden)
{
    if (golden == 0.0)
        return est == 0.0 ? 0.0 : 1.0;
    return std::abs(est - golden) / std::abs(golden);
}

} // namespace

double
SampleError::maxError() const
{
    return std::max({memMissRate, l1MissRate, ccOpsPerKCycle, cycles});
}

SampledRun
runSampled(const std::vector<sim::TraceRecord> &records,
           const SampledRunParams &params)
{
    CC_ASSERT(params.intervalRecords > 0, "interval size must be positive");

    SampledRun run;

    // 1. Streaming profile pass: features + exact totals.
    IntervalProfiler prof(params.intervalRecords);
    for (const sim::TraceRecord &rec : records)
        prof.observe(rec);
    prof.finish();
    const std::vector<IntervalFeatures> &intervals = prof.intervals();
    if (intervals.empty())
        return run;

    // 2. Phase clustering.
    ClusterParams cp;
    cp.clusters = params.clusters;
    cp.seed = params.seed;
    run.clustering = clusterIntervals(intervals, cp);

    // 3. Replay each phase's representative, fanned out across the
    //    pool into disjoint slots (byte-identical at any thread count,
    //    DESIGN.md §8). Each replay: fresh System, functional warm-up
    //    over the preceding records, metrics reset, then the interval.
    const std::vector<Phase> &phases = run.clustering.phases;
    run.representatives.resize(phases.size());
    unsigned jobs = params.jobs ? params.jobs
                                : ThreadPool::defaultWorkers();
    ThreadPool pool(jobs <= 1 ? 0 : jobs);
    pool.parallelFor(phases.size(), [&](std::size_t p) {
        const Phase &phase = phases[p];
        const IntervalFeatures &iv = intervals[phase.representative];
        RepresentativeRun &rep = run.representatives[p];
        rep.interval = phase.representative;
        rep.intervalCount = phase.intervalCount;
        rep.weight = phase.weight;

        std::size_t start = iv.firstRecord;
        std::size_t warm = std::min<std::size_t>(params.warmupRecords,
                                                 start);
        rep.warmupUsed = warm;

        sim::System sys;
        sim::TraceReplayResult scratch;
        for (std::size_t i = start - warm; i < start; ++i)
            sim::replayRecord(sys, records[i], scratch);
        sys.resetMetrics();

        for (std::size_t i = start; i < start + iv.records; ++i)
            sim::replayRecord(sys, records[i], rep.metrics);
        rep.metrics.cycles = sys.elapsed();
        unsigned cores = sys.hierarchy().cores();
        rep.coreCycles.reserve(cores);
        for (unsigned c = 0; c < cores; ++c)
            rep.coreCycles.push_back(
                sys.coreCycles(static_cast<CoreId>(c)));
    });

    // 4. Reconstitution. Counts are exact (profiler totals); rates are
    //    the weighted combination of the representatives, scaled by
    //    each phase's interval count.
    SampledEstimate &est = run.estimate;
    est.reads = prof.totals().reads;
    est.writes = prof.totals().writes;
    est.ccInstructions = prof.totals().ccOps;
    est.intervalsTotal = intervals.size();
    est.intervalsReplayed = phases.size();
    est.recordsTotal = prof.totals().records;

    std::vector<double> coreCycles;
    for (const RepresentativeRun &rep : run.representatives) {
        double scale = static_cast<double>(rep.intervalCount);
        est.l1Misses += scale * static_cast<double>(rep.metrics.l1Misses);
        est.memAccesses +=
            scale * static_cast<double>(rep.metrics.memAccesses);
        est.ccBlockOps +=
            scale * static_cast<double>(rep.metrics.ccBlockOps);
        if (coreCycles.size() < rep.coreCycles.size())
            coreCycles.resize(rep.coreCycles.size(), 0.0);
        for (std::size_t c = 0; c < rep.coreCycles.size(); ++c)
            coreCycles[c] +=
                scale * static_cast<double>(rep.coreCycles[c]);
        est.recordsReplayed += rep.warmupUsed +
            intervals[rep.interval].records;
    }
    // Whole-run time: cores run concurrently, so the estimate is the
    // slowest core's weighted sum, mirroring System::elapsed().
    for (double c : coreCycles)
        est.cycles = std::max(est.cycles, c);

    std::uint64_t demand = est.reads + est.writes;
    est.memMissRate = demand ? est.memAccesses /
            static_cast<double>(demand) : 0.0;
    est.l1MissRate = demand ? est.l1Misses /
            static_cast<double>(demand) : 0.0;
    est.ccOpsPerKCycle =
        est.cycles > 0.0 ? 1000.0 * est.ccBlockOps / est.cycles : 0.0;
    return run;
}

sim::TraceReplayResult
runFull(const std::vector<sim::TraceRecord> &records)
{
    sim::System sys;
    sim::TraceReplayResult res;
    for (const sim::TraceRecord &rec : records)
        sim::replayRecord(sys, rec, res);
    res.cycles = sys.elapsed();
    return res;
}

SampleError
compareWithGolden(const SampledEstimate &estimate,
                  const sim::TraceReplayResult &golden)
{
    SampleError err;
    err.memMissRate = relError(estimate.memMissRate,
                               golden.memMissRate());
    double goldenL1 = (golden.reads + golden.writes)
        ? static_cast<double>(golden.l1Misses) /
            static_cast<double>(golden.reads + golden.writes)
        : 0.0;
    err.l1MissRate = relError(estimate.l1MissRate, goldenL1);
    err.ccOpsPerKCycle = relError(estimate.ccOpsPerKCycle,
                                  golden.ccOpsPerKCycle());
    err.cycles = relError(estimate.cycles,
                          static_cast<double>(golden.cycles));
    return err;
}

} // namespace ccache::sample
