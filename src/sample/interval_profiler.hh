/**
 * @file
 * Streaming interval profiler for trace-driven sampled simulation
 * (DESIGN.md §16).
 *
 * The profiler slices a record stream into fixed-size intervals (a
 * configurable number of trace records each) and computes one feature
 * vector per interval — the SimPoint idea ("Automatically
 * Characterizing Large Scale Program Behavior") adapted to a memory
 * trace: instead of basic-block vectors we use the features that
 * matter to the cache system ("Improving the Representativeness of
 * Simulation Intervals for the Cache Memory System", PAPERS.md):
 *
 *  - access-type mix (read / write / CC-op fractions),
 *  - working-set size (distinct 4 KB pages touched),
 *  - a log-bucketed reuse-distance histogram (time distance in
 *    accesses since the previous touch of the same 64 B block — the
 *    standard streaming O(1) proxy for LRU stack distance),
 *  - CC-op density and CC bytes per record.
 *
 * One pass, O(1) amortized per record, no simulation: profiling a
 * billion-access trace costs a hash probe per access, which is what
 * makes the sampled frontend worthwhile.
 */

#ifndef CCACHE_SAMPLE_INTERVAL_PROFILER_HH
#define CCACHE_SAMPLE_INTERVAL_PROFILER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/trace.hh"

namespace ccache::sample {

/** Log2 reuse-distance buckets: [0] is distance < 2, [i] is
 *  [2^i, 2^(i+1)), the last bucket is everything beyond, and cold
 *  first touches are counted separately. */
inline constexpr std::size_t kReuseBuckets = 16;

/** Per-interval feature vector (raw counts; normalize() projects it
 *  to the clustering space). */
struct IntervalFeatures
{
    std::uint64_t firstRecord = 0;   ///< index of the interval's first record
    std::uint64_t records = 0;       ///< records in this interval

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ccOps = 0;
    std::uint64_t ccBytes = 0;       ///< sum of CC vector sizes

    std::uint64_t workingSetPages = 0;   ///< distinct 4 KB pages touched
    std::uint64_t coldTouches = 0;       ///< first-ever touches of a block
    std::uint64_t reuseHist[kReuseBuckets] = {};

    /** Demand accesses (reads + writes; CC ops excluded). */
    std::uint64_t accesses() const { return reads + writes; }

    /**
     * Project to the normalized clustering space: access-type mix,
     * log-scaled working set, normalized reuse histogram and CC
     * density, every dimension in [0, 1] so no single feature
     * dominates the Euclidean metric.
     */
    std::vector<double> normalized() const;
};

/** Aggregate (exact) totals over the whole profiled stream. */
struct ProfileTotals
{
    std::uint64_t records = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ccOps = 0;
    std::uint64_t ccBytes = 0;
};

/**
 * Streaming profiler: feed records one at a time with observe(); call
 * finish() once at end-of-stream to flush the final (possibly short)
 * interval. The per-block last-touch map persists across interval
 * boundaries so reuse distances see the whole history.
 */
class IntervalProfiler
{
  public:
    explicit IntervalProfiler(std::size_t interval_records);

    /** Records per full interval. */
    std::size_t intervalRecords() const { return intervalRecords_; }

    void observe(const sim::TraceRecord &rec);

    /** Flush the trailing partial interval (idempotent). */
    void finish();

    /** Completed intervals (call finish() first for the tail). */
    const std::vector<IntervalFeatures> &intervals() const
    {
        return intervals_;
    }

    /** Exact whole-stream totals (the sampled run reconstitutes count
     *  metrics from these, never from the sample — DESIGN.md §16). */
    const ProfileTotals &totals() const { return totals_; }

  private:
    void touch(Addr addr);

    std::size_t intervalRecords_;
    std::uint64_t recordIndex_ = 0;
    IntervalFeatures current_;
    std::vector<IntervalFeatures> intervals_;
    ProfileTotals totals_;
    bool finished_ = false;

    /** Global access clock and per-block last-touch times (block
     *  granularity, persists across intervals). */
    std::uint64_t accessClock_ = 0;
    std::unordered_map<Addr, std::uint64_t> lastTouch_;
    std::unordered_set<Addr> intervalPages_;
};

/** Convenience one-shot: profile @p records at @p interval_records. */
std::vector<IntervalFeatures>
profileTrace(const std::vector<sim::TraceRecord> &records,
             std::size_t interval_records);

} // namespace ccache::sample

#endif // CCACHE_SAMPLE_INTERVAL_PROFILER_HH
