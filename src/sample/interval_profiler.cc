#include "sample/interval_profiler.hh"

#include <algorithm>
#include <cmath>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::sample {

namespace {

/** log2 bucket of a reuse distance (distance >= 1). */
std::size_t
reuseBucket(std::uint64_t distance)
{
    std::size_t b = 0;
    while (distance > 1 && b + 1 < kReuseBuckets) {
        distance >>= 1;
        ++b;
    }
    return b;
}

} // namespace

std::vector<double>
IntervalFeatures::normalized() const
{
    std::vector<double> v;
    v.reserve(6 + kReuseBuckets);

    double n = records ? static_cast<double>(records) : 1.0;
    v.push_back(static_cast<double>(reads) / n);
    v.push_back(static_cast<double>(writes) / n);
    v.push_back(static_cast<double>(ccOps) / n);

    // CC bytes per record, log-compressed: a memcpy-heavy phase moves
    // KBs per record, a scalar phase zero. log2(1 + x) / 16 maps
    // [0, 64 KB/record] into ~[0, 1].
    v.push_back(std::log2(1.0 + static_cast<double>(ccBytes) / n) / 16.0);

    // Working set, log-compressed: log2(1 + pages) / 24 keeps traces up
    // to ~16 M distinct pages inside [0, 1].
    v.push_back(std::log2(1.0 + static_cast<double>(workingSetPages)) /
                24.0);

    // Cold-touch fraction and the reuse histogram, normalized over the
    // interval's touches so the shape (streaming vs looping) is what
    // clusters, not the interval length.
    std::uint64_t touches = coldTouches;
    for (std::size_t i = 0; i < kReuseBuckets; ++i)
        touches += reuseHist[i];
    double t = touches ? static_cast<double>(touches) : 1.0;
    v.push_back(static_cast<double>(coldTouches) / t);
    for (std::size_t i = 0; i < kReuseBuckets; ++i)
        v.push_back(static_cast<double>(reuseHist[i]) / t);

    return v;
}

IntervalProfiler::IntervalProfiler(std::size_t interval_records)
    : intervalRecords_(interval_records)
{
    CC_ASSERT(interval_records > 0, "interval size must be positive");
}

void
IntervalProfiler::touch(Addr addr)
{
    Addr block = addr & ~static_cast<Addr>(kBlockSize - 1);
    ++accessClock_;
    auto [it, inserted] = lastTouch_.try_emplace(block, accessClock_);
    if (inserted) {
        ++current_.coldTouches;
    } else {
        std::uint64_t distance = accessClock_ - it->second;
        ++current_.reuseHist[reuseBucket(distance)];
        it->second = accessClock_;
    }
    intervalPages_.insert(addr >> kPageOffsetBits);
}

void
IntervalProfiler::observe(const sim::TraceRecord &rec)
{
    CC_ASSERT(!finished_, "observe after finish");
    if (current_.records == 0)
        current_.firstRecord = recordIndex_;

    switch (rec.kind) {
      case sim::TraceRecord::Kind::Read:
        ++current_.reads;
        ++totals_.reads;
        touch(rec.addr);
        break;
      case sim::TraceRecord::Kind::Write:
        ++current_.writes;
        ++totals_.writes;
        touch(rec.addr);
        break;
      case sim::TraceRecord::Kind::CcOp:
        ++current_.ccOps;
        ++totals_.ccOps;
        current_.ccBytes += rec.instr.size;
        totals_.ccBytes += rec.instr.size;
        // A CC op touches every block of every operand; for the
        // feature vector the operand bases are enough to track the
        // page footprint without walking the whole vector.
        for (Addr a : rec.instr.operandAddrs())
            touch(a);
        break;
    }

    ++current_.records;
    ++recordIndex_;
    ++totals_.records;

    if (current_.records == intervalRecords_) {
        current_.workingSetPages = intervalPages_.size();
        intervals_.push_back(current_);
        current_ = IntervalFeatures{};
        intervalPages_.clear();
    }
}

void
IntervalProfiler::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (current_.records > 0) {
        current_.workingSetPages = intervalPages_.size();
        intervals_.push_back(current_);
        current_ = IntervalFeatures{};
        intervalPages_.clear();
    }
}

std::vector<IntervalFeatures>
profileTrace(const std::vector<sim::TraceRecord> &records,
             std::size_t interval_records)
{
    IntervalProfiler prof(interval_records);
    for (const sim::TraceRecord &rec : records)
        prof.observe(rec);
    prof.finish();
    return prof.intervals();
}

} // namespace ccache::sample
