#include "sample/phase_cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"

namespace ccache::sample {

namespace {

double
sqDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

/** k-means++ seeding (Arthur & Vassilvitskii): the first centroid is a
 *  seeded uniform draw, each next one is drawn with probability
 *  proportional to its squared distance to the nearest chosen
 *  centroid. All draws come from @p rng only. */
std::vector<std::vector<double>>
seedCentroids(const std::vector<std::vector<double>> &points, std::size_t k,
              Rng &rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.below(points.size())]);

    std::vector<double> nearest(points.size(),
                                std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            nearest[i] = std::min(nearest[i],
                                  sqDistance(points[i], centroids.back()));
            total += nearest[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; further
            // centroids would be duplicates. Stop early.
            break;
        }
        double target = rng.uniform() * total;
        double acc = 0.0;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            acc += nearest[i];
            if (acc >= target) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

} // namespace

PhaseClustering
clusterIntervals(const std::vector<IntervalFeatures> &intervals,
                 const ClusterParams &params)
{
    PhaseClustering out;
    if (intervals.empty())
        return out;

    std::vector<std::vector<double>> points;
    points.reserve(intervals.size());
    for (const IntervalFeatures &f : intervals)
        points.push_back(f.normalized());

    std::size_t k = std::min(params.clusters, intervals.size());
    CC_ASSERT(k > 0, "cluster count must be positive");

    Rng rng(params.seed);
    std::vector<std::vector<double>> centroids =
        seedCentroids(points, k, rng);
    k = centroids.size();

    std::vector<std::size_t> assign(points.size(), 0);
    for (std::size_t iter = 0; iter < params.maxIterations; ++iter) {
        ++out.iterations;

        // Assignment step, in interval order; equidistant centroids
        // break toward the lowest centroid index (strict <).
        bool changed = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            std::size_t best = 0;
            double bestD = sqDistance(points[i], centroids[0]);
            for (std::size_t c = 1; c < k; ++c) {
                double d = sqDistance(points[i], centroids[c]);
                if (d < bestD) {
                    bestD = d;
                    best = c;
                }
            }
            if (assign[i] != best) {
                assign[i] = best;
                changed = true;
            }
        }
        if (!changed && iter > 0) {
            out.converged = true;
            break;
        }

        // Update step: mean of members, accumulated in interval order.
        // An emptied cluster keeps its old centroid (it can win points
        // back next iteration; dropping it here would renumber).
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(points[0].size(), 0.0));
        std::vector<std::uint64_t> counts(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            ++counts[assign[i]];
            for (std::size_t d = 0; d < points[i].size(); ++d)
                sums[assign[i]][d] += points[i][d];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            for (double &s : sums[c])
                s /= static_cast<double>(counts[c]);
            centroids[c] = std::move(sums[c]);
        }
    }

    // Representatives: per cluster, the member closest to the centroid;
    // ties break toward the lowest interval index (strict <).
    std::vector<std::size_t> rep(k, points.size());
    std::vector<double> repD(k, std::numeric_limits<double>::max());
    std::vector<std::uint64_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::size_t c = assign[i];
        ++counts[c];
        double d = sqDistance(points[i], centroids[c]);
        if (d < repD[c]) {
            repD[c] = d;
            rep[c] = i;
        }
    }

    // Report non-empty clusters ordered by their lowest member, so
    // phase numbering is stable across runs and readable in reports.
    std::vector<std::size_t> firstMember(k, points.size());
    for (std::size_t i = points.size(); i-- > 0;)
        firstMember[assign[i]] = i;
    std::vector<std::size_t> order;
    for (std::size_t c = 0; c < k; ++c)
        if (counts[c] > 0)
            order.push_back(c);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return firstMember[a] < firstMember[b];
              });

    std::vector<std::size_t> phaseOf(k, 0);
    for (std::size_t p = 0; p < order.size(); ++p) {
        std::size_t c = order[p];
        phaseOf[c] = p;
        Phase ph;
        ph.representative = rep[c];
        ph.intervalCount = counts[c];
        ph.weight = static_cast<double>(counts[c]) /
            static_cast<double>(points.size());
        out.phases.push_back(ph);
    }
    out.assignment.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        out.assignment[i] = phaseOf[assign[i]];
    return out;
}

} // namespace ccache::sample
