/**
 * @file
 * Error-bounded sampled trace simulation (DESIGN.md §16).
 *
 * Pipeline: profile the trace into intervals (interval_profiler.hh),
 * cluster the intervals into phases (phase_cluster.hh), then replay
 * ONLY each phase's representative interval — each on a fresh System,
 * preceded by a configurable functional warm-up window (the records
 * immediately before the interval replay through the full hierarchy,
 * then metrics reset, so the representative starts from warmed caches
 * instead of cold ones). Whole-run statistics reconstitute as:
 *
 *  - count metrics (reads/writes/CC ops) come EXACTLY from the
 *    profiler's streaming totals — profiling sees every record, so
 *    these carry zero sampling error by construction (the SimPoint
 *    property: instruction counts are exact, only rates are
 *    estimated);
 *  - rate metrics (miss rates, CC-op throughput, cycles) are the
 *    cluster-weight combination of the representatives' measurements:
 *    estimate = sum_phase weight * metric(representative), with
 *    per-interval counts scaled by the phase's interval count.
 *
 * Against an optional golden full run the estimator reports
 * per-metric relative error; bench/sampled_trace gates those errors
 * in CI. Representative replays are independent simulations and fan
 * out across a thread pool into disjoint slots, so results are
 * byte-identical at any thread count (DESIGN.md §8).
 */

#ifndef CCACHE_SAMPLE_SAMPLED_RUNNER_HH
#define CCACHE_SAMPLE_SAMPLED_RUNNER_HH

#include <cstdint>
#include <vector>

#include "sample/interval_profiler.hh"
#include "sample/phase_cluster.hh"
#include "sim/trace.hh"

namespace ccache::sample {

struct SampledRunParams
{
    std::size_t intervalRecords = 1000;  ///< records per interval
    std::size_t clusters = 8;            ///< max phases (k)
    /** Functional warm-up: records replayed before each representative
     *  with metrics discarded. Defaults to one interval's worth. */
    std::size_t warmupRecords = 1000;
    std::uint64_t seed = 0x5a4d9eedULL;  ///< k-means++ seeding
    unsigned jobs = 0;                   ///< 0 = $CCACHE_JOBS default
};

/** One replayed representative's measurements. */
struct RepresentativeRun
{
    std::size_t interval = 0;        ///< interval index replayed
    std::uint64_t intervalCount = 0; ///< intervals this phase stands for
    double weight = 0.0;
    std::size_t warmupUsed = 0;      ///< warm-up records actually replayed
    sim::TraceReplayResult metrics;  ///< this interval only (post-warm-up)

    /** Post-warm-up cycles per core, indexed by CoreId. Kept separate
     *  from metrics.cycles (the interval makespan) because whole-run
     *  time must reconstitute per core: cores run concurrently, so the
     *  estimate is max over cores of the weighted per-core sums — not
     *  the sum of interval makespans, which double-counts parallel
     *  work on multi-core traces. */
    std::vector<Cycles> coreCycles;
};

/** Reconstituted whole-run estimate. */
struct SampledEstimate
{
    /** Exact totals (from profiling, not sampling). @{ */
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t ccInstructions = 0;
    /** @} */

    /** Weighted estimates. @{ */
    double l1Misses = 0.0;
    double memAccesses = 0.0;
    double ccBlockOps = 0.0;
    double cycles = 0.0;
    double memMissRate = 0.0;     ///< memAccesses / (reads + writes)
    double l1MissRate = 0.0;
    double ccOpsPerKCycle = 0.0;  ///< CC-op throughput
    /** @} */

    std::size_t intervalsTotal = 0;
    std::size_t intervalsReplayed = 0;
    std::uint64_t recordsTotal = 0;
    std::uint64_t recordsReplayed = 0;   ///< incl. warm-up records

    /** Fraction of intervals actually simulated. */
    double replayFraction() const
    {
        return intervalsTotal ? static_cast<double>(intervalsReplayed) /
                static_cast<double>(intervalsTotal) : 0.0;
    }
};

/** Per-metric relative error of an estimate vs a golden full run. */
struct SampleError
{
    double memMissRate = 0.0;
    double l1MissRate = 0.0;
    double ccOpsPerKCycle = 0.0;
    double cycles = 0.0;

    /** Largest of the four (the bench's gate input). */
    double maxError() const;
};

/** Full sampled-run outcome. */
struct SampledRun
{
    PhaseClustering clustering;
    std::vector<RepresentativeRun> representatives;  ///< phase order
    SampledEstimate estimate;
};

/**
 * Run the sampled pipeline over @p records. The profiling pass is
 * streaming and single-threaded; representative replays fan out
 * across params.jobs workers into per-phase slots.
 */
SampledRun runSampled(const std::vector<sim::TraceRecord> &records,
                      const SampledRunParams &params);

/** Golden full run of the same records (one fresh System). */
sim::TraceReplayResult
runFull(const std::vector<sim::TraceRecord> &records);

/** Relative errors |estimate - golden| / golden (0 when golden is 0). */
SampleError compareWithGolden(const SampledEstimate &estimate,
                              const sim::TraceReplayResult &golden);

} // namespace ccache::sample

#endif // CCACHE_SAMPLE_SAMPLED_RUNNER_HH
