/**
 * @file
 * Deterministic seeded k-means phase clustering over interval feature
 * vectors (DESIGN.md §16).
 *
 * SimPoint-style phase detection: intervals with similar feature
 * vectors belong to the same program phase, one representative per
 * phase is simulated, and whole-run statistics are reconstituted as
 * the cluster-weight combination of the representatives.
 *
 * Determinism contract (the §8 byte-identity rules extend here): the
 * clustering is a pure function of (features, params). k-means++
 * seeding draws from an Rng seeded only by params.seed, Lloyd
 * iterations run in interval order, every tie (equidistant centroids,
 * equidistant representatives, empty clusters) breaks toward the
 * lowest index, and no floating-point reduction depends on thread
 * count — the clusterer is single-threaded by design; parallelism
 * belongs to the replay of the representatives, not the selection.
 */

#ifndef CCACHE_SAMPLE_PHASE_CLUSTER_HH
#define CCACHE_SAMPLE_PHASE_CLUSTER_HH

#include <cstdint>
#include <vector>

#include "sample/interval_profiler.hh"

namespace ccache::sample {

struct ClusterParams
{
    std::size_t clusters = 8;        ///< k (clamped to interval count)
    std::size_t maxIterations = 32;  ///< Lloyd iteration cap
    std::uint64_t seed = 0x5a4d9eedULL;  ///< k-means++ seeding stream
};

/** One phase: which intervals it owns and who represents them. */
struct Phase
{
    std::size_t representative = 0;  ///< interval index replayed for all
    std::uint64_t intervalCount = 0; ///< cluster size
    double weight = 0.0;             ///< intervalCount / totalIntervals
};

/** Clustering outcome. */
struct PhaseClustering
{
    std::vector<Phase> phases;            ///< one per non-empty cluster
    std::vector<std::size_t> assignment;  ///< interval -> phase index
    std::size_t iterations = 0;           ///< Lloyd iterations executed
    bool converged = false;
};

/**
 * Cluster @p intervals into at most params.clusters phases. Phases are
 * reported in order of their lowest member interval, so phase numbering
 * is stable and meaningful (phase 0 contains interval 0).
 */
PhaseClustering clusterIntervals(const std::vector<IntervalFeatures> &intervals,
                                 const ClusterParams &params);

} // namespace ccache::sample

#endif // CCACHE_SAMPLE_PHASE_CLUSTER_HH
