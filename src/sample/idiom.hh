/**
 * @file
 * CC-idiom converter pass: rewrite bulk memcpy / memcmp / memset loops
 * found in raw load/store traces into Compute Cache instructions
 * (DESIGN.md §16).
 *
 * External traces captured on conventional machines express bulk data
 * movement as block-granular load/store loops. This pass detects the
 * three idioms the Compute Cache ISA accelerates and rewrites them:
 *
 *   R a, W b, R a+64, W b+64, ...   ->  cc_copy a b n     (memcpy)
 *   R a, R b, R a+64, R b+64, ...   ->  cc_cmp  a b n     (memcmp)
 *   W a, W a+64, W a+128, ...       ->  cc_buz  a n       (memset)
 *
 * Detection is a per-core run automaton (interleaved cores do not
 * break each other's runs); a run must cover at least
 * ConvertParams::minRunBlocks consecutive 64 B blocks to convert, and
 * emitted instructions honor the ISA caps (cc_copy/cc_buz 16 KB,
 * cc_cmp 512 B) by splitting long runs. Records that fit no idiom
 * pass through unchanged, in order.
 *
 * Approximations, documented: traces carry no data values, so bulk
 * store runs convert to cc_buz (zeroing) and interleaved-read runs to
 * cc_cmp regardless of what the original program stored or compared —
 * the memory-system behaviour (blocks touched, operand locality,
 * sub-array occupancy) is what the rewrite preserves.
 */

#ifndef CCACHE_SAMPLE_IDIOM_HH
#define CCACHE_SAMPLE_IDIOM_HH

#include <cstdint>
#include <vector>

#include "sim/trace.hh"

namespace ccache::sample {

struct ConvertParams
{
    /** Minimum run length (in 64 B blocks) for a rewrite; shorter runs
     *  pass through raw. 4 blocks = 256 B, the break-even point below
     *  which CC setup cost beats nothing. */
    std::size_t minRunBlocks = 4;
};

struct ConvertStats
{
    std::uint64_t recordsIn = 0;
    std::uint64_t recordsOut = 0;

    std::uint64_t copyRuns = 0;
    std::uint64_t copyBlocks = 0;   ///< blocks absorbed into cc_copy
    std::uint64_t cmpRuns = 0;
    std::uint64_t cmpBlocks = 0;    ///< block PAIRS absorbed into cc_cmp
    std::uint64_t zeroRuns = 0;
    std::uint64_t zeroBlocks = 0;   ///< blocks absorbed into cc_buz

    std::uint64_t convertedRecords() const
    {
        return 2 * copyBlocks + 2 * cmpBlocks + zeroBlocks;
    }
};

struct ConvertResult
{
    std::vector<sim::TraceRecord> records;
    ConvertStats stats;
};

/** Run the converter pass over @p records. */
ConvertResult convertIdioms(const std::vector<sim::TraceRecord> &records,
                            const ConvertParams &params = ConvertParams{});

} // namespace ccache::sample

#endif // CCACHE_SAMPLE_IDIOM_HH
