#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::mem {

Memory::Memory(const MemoryParams &params) : params_(params)
{
}

Memory::Page &
Memory::pageFor(Addr addr)
{
    Addr page = alignDown(addr, kPageSize);
    if (page == lastPageAddr_ && lastPage_)
        return *lastPage_;
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        auto fresh = std::make_unique<Page>();
        fresh->fill(0);
        it = pages_.emplace(page, std::move(fresh)).first;
    }
    lastPageAddr_ = page;
    lastPage_ = it->second.get();
    return *it->second;
}

const Memory::Page *
Memory::pageForConst(Addr addr) const
{
    Addr page = alignDown(addr, kPageSize);
    if (page == lastPageAddr_)
        return lastPage_;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr;
    lastPageAddr_ = page;
    lastPage_ = it->second.get();
    return lastPage_;
}

Block
Memory::readBlock(Addr addr) const
{
    CC_ASSERT(isAligned(addr, kBlockSize), "unaligned block read at 0x",
              std::hex, addr);
    ++reads_;
    Block out{};
    const Page *page = pageForConst(addr);
    if (page) {
        std::size_t off = addr & (kPageSize - 1);
        std::memcpy(out.data(), page->data() + off, kBlockSize);
    }
    return out;
}

void
Memory::writeBlock(Addr addr, const Block &data)
{
    CC_ASSERT(isAligned(addr, kBlockSize), "unaligned block write at 0x",
              std::hex, addr);
    ++writes_;
    Page &page = pageFor(addr);
    std::size_t off = addr & (kPageSize - 1);
    std::memcpy(page.data() + off, data.data(), kBlockSize);
}

void
Memory::writeBytes(Addr addr, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        Page &page = pageFor(addr);
        std::size_t off = addr & (kPageSize - 1);
        std::size_t chunk = std::min(len, kPageSize - off);
        std::memcpy(page.data() + off, data, chunk);
        addr += chunk;
        data += chunk;
        len -= chunk;
    }
}

void
Memory::readBytes(Addr addr, std::uint8_t *out, std::size_t len) const
{
    while (len > 0) {
        std::size_t off = addr & (kPageSize - 1);
        std::size_t chunk = std::min(len, kPageSize - off);
        const Page *page = pageForConst(addr);
        if (page)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

std::uint64_t
Memory::readWord(Addr addr) const
{
    std::uint64_t w = 0;
    readBytes(addr, reinterpret_cast<std::uint8_t *>(&w), sizeof(w));
    return w;
}

void
Memory::writeWord(Addr addr, std::uint64_t value)
{
    writeBytes(addr, reinterpret_cast<const std::uint8_t *>(&value),
               sizeof(value));
}

Cycles
Memory::access(Cycles now)
{
    Cycles start = std::max(now, channelFree_);
    channelFree_ = start + params_.blockOccupancy;
    return (start - now) + params_.accessLatency;
}

} // namespace ccache::mem
