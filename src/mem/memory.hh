/**
 * @file
 * Functional + timing model of main memory.
 *
 * Storage is a sparse page map so multi-gigabyte address spaces cost only
 * what is touched. Timing is the paper's fixed 120-cycle access latency
 * (Table IV) plus a simple bandwidth constraint.
 */

#ifndef CCACHE_MEM_MEMORY_HH
#define CCACHE_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/block.hh"
#include "common/types.hh"

namespace ccache::mem {

/** Timing parameters of the memory model. */
struct MemoryParams
{
    Cycles accessLatency = 120;   ///< Table IV

    /** Minimum cycles between successive block transfers on the channel
     *  (64 B at ~25.6 GB/s and 2.66 GHz is ~6.5 core cycles). */
    Cycles blockOccupancy = 7;
};

/** Sparse functional backing store with fixed-latency timing. */
class Memory
{
  public:
    explicit Memory(const MemoryParams &params = MemoryParams{});

    const MemoryParams &params() const { return params_; }

    /** Functional access at block granularity. @{ */
    Block readBlock(Addr addr) const;
    void writeBlock(Addr addr, const Block &data);
    /** @} */

    /** Functional byte-granularity helpers for loading workloads. @{ */
    void writeBytes(Addr addr, const std::uint8_t *data, std::size_t len);
    void readBytes(Addr addr, std::uint8_t *out, std::size_t len) const;
    std::uint64_t readWord(Addr addr) const;
    void writeWord(Addr addr, std::uint64_t value);
    /** @} */

    /** Latency of one block access issued at @p now, accounting for
     *  channel occupancy. Advances the channel-busy cursor. */
    Cycles access(Cycles now);

    /** Number of 4 KB pages materialized so far. */
    std::size_t touchedPages() const { return pages_.size(); }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    Page &pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    MemoryParams params_;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /** One-entry page memo: block accesses stream 64-to-a-page, and the
     *  map's unique_ptr targets are stable (pages are never erased), so
     *  a cached pointer stays valid across inserts (DESIGN.md §13).
     *  ~Addr{0} is never page-aligned, so the empty memo never hits.
     *  Mutable: readBlock() is logically const. */
    mutable Addr lastPageAddr_ = ~Addr{0};
    mutable Page *lastPage_ = nullptr;

    Cycles channelFree_ = 0;
    mutable std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace ccache::mem

#endif // CCACHE_MEM_MEMORY_HH
