#include "verify/coherence_checker.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::verify {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

CoherenceChecker::CoherenceChecker(cache::Hierarchy &hier,
                                   const CoherenceCheckerParams &params)
    : hier_(hier), params_(params)
{
}

void
CoherenceChecker::auditAddrInto(Addr addr,
                                std::vector<CoherenceViolation> &out)
{
    addr = alignDown(addr, kBlockSize);
    const unsigned cores = hier_.cores();

    unsigned writable_cores = 0;
    unsigned valid_cores = 0;
    CoreId writer = 0;

    for (unsigned c = 0; c < cores; ++c) {
        cache::Mesi s1 = hier_.l1(c).state(addr);
        cache::Mesi s2 = hier_.l2(c).state(addr);

        if (cache::valid(s1) || cache::valid(s2))
            ++valid_cores;
        if (cache::writable(s1) || cache::writable(s2)) {
            ++writable_cores;
            writer = c;
        }

        if (cache::valid(s1) && !hier_.l2(c).contains(addr))
            out.push_back({"inclusion.l1_l2", addr,
                           "core " + std::to_string(c) + " holds " +
                               toString(s1) + " in L1 but L2 lost the line"});
    }

    if (writable_cores > 1)
        out.push_back({"swmr", addr,
                       std::to_string(writable_cores) +
                           " cores hold writable (E/M) copies"});
    if (writable_cores == 1 && valid_cores > 1)
        out.push_back({"swmr.m_plus_s", addr,
                       "core " + std::to_string(writer) +
                           " holds a writable copy while " +
                           std::to_string(valid_cores - 1) +
                           " other core(s) hold valid copies"});

    auto home = hier_.homeSliceIfMapped(addr);
    if (!home) {
        // Every fill path maps the page before a private copy can
        // exist, so valid copies of an unmapped page are impossible.
        if (valid_cores > 0)
            out.push_back({"inclusion.unmapped_page", addr,
                           std::to_string(valid_cores) +
                               " core(s) hold copies of an unmapped page"});
        return;
    }
    unsigned slice = *home;
    bool resident = hier_.l3Slice(slice).contains(addr);

    cache::DirEntry e = hier_.directory(slice).entry(addr);
    for (unsigned c = 0; c < cores; ++c) {
        cache::Mesi s1 = hier_.l1(c).state(addr);
        cache::Mesi s2 = hier_.l2(c).state(addr);
        if (!cache::valid(s1) && !cache::valid(s2))
            continue;
        if (cache::valid(s2) && !resident)
            out.push_back({"inclusion.l2_l3", addr,
                           "core " + std::to_string(c) +
                               " holds a valid L2 copy but home slice " +
                               std::to_string(slice) + " lost the line"});
        if (!(e.sharers & (1u << c)))
            out.push_back({"dir.missing_sharer", addr,
                           "core " + std::to_string(c) +
                               " holds a real copy (L1 " + toString(s1) +
                               ", L2 " + toString(s2) +
                               ") but its sharer bit is clear at slice " +
                               std::to_string(slice)});
    }
    if (writable_cores == 1 && (!e.owner || *e.owner != writer))
        out.push_back({"dir.owner_mismatch", addr,
                       "core " + std::to_string(writer) +
                           " holds the writable copy but the directory " +
                           (e.owner ? "records owner " +
                                std::to_string(*e.owner)
                                    : std::string("records no owner"))});
    if ((e.hasSharers() || e.owner) && !resident)
        out.push_back({"dir.not_resident", addr,
                       "directory at slice " + std::to_string(slice) +
                           " tracks the block but the inclusive slice "
                           "does not hold it"});
}

std::vector<CoherenceViolation>
CoherenceChecker::auditAddr(Addr addr)
{
    std::vector<CoherenceViolation> out;
    auditAddrInto(addr, out);
    return out;
}

std::vector<CoherenceViolation>
CoherenceChecker::auditAll()
{
    // The reachable state is the union of all private lines and all
    // directory entries; an L3 line with neither is unconstrained.
    std::unordered_set<Addr> addrs;
    for (unsigned c = 0; c < hier_.cores(); ++c) {
        hier_.l1(c).forEachLine(
            [&](Addr a, cache::Mesi, bool, const Block &) {
                addrs.insert(a);
            });
        hier_.l2(c).forEachLine(
            [&](Addr a, cache::Mesi, bool, const Block &) {
                addrs.insert(a);
            });
    }
    for (unsigned s = 0; s < hier_.params().ring.nodes; ++s)
        hier_.directory(s).forEachEntry(
            [&](Addr a, const cache::DirEntry &) { addrs.insert(a); });

    // Deterministic violation order for reproducible diagnostics.
    std::vector<Addr> sorted(addrs.begin(), addrs.end());
    std::sort(sorted.begin(), sorted.end());

    std::vector<CoherenceViolation> out;
    for (Addr a : sorted)
        auditAddrInto(a, out);
    return out;
}

void
CoherenceChecker::onTransaction(Addr addr)
{
    auto start = std::chrono::steady_clock::now();
    ++checks_;

    std::vector<CoherenceViolation> v;
    auditAddrInto(addr, v);
    if (v.empty() && params_.auditInterval &&
        checks_ % params_.auditInterval == 0) {
        ++fullAudits_;
        v = auditAll();
    }

    wallSeconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!v.empty())
        raise(v);
}

void
CoherenceChecker::checkNow()
{
    auto start = std::chrono::steady_clock::now();
    ++checks_;
    ++fullAudits_;
    std::vector<CoherenceViolation> v = auditAll();
    wallSeconds_ += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (!v.empty())
        raise(v);
}

void
CoherenceChecker::raise(const std::vector<CoherenceViolation> &v)
{
    Json d = Json::object();
    d["coherence_violations"] = static_cast<std::uint64_t>(v.size());
    Json list = Json::array();
    std::size_t reported =
        std::min(v.size(), params_.maxViolationsReported);
    for (std::size_t i = 0; i < reported; ++i) {
        Json one = Json::object();
        one["invariant"] = v[i].invariant;
        one["addr"] = hexAddr(v[i].addr);
        one["detail"] = v[i].detail;
        list.push(std::move(one));
    }
    d["violations"] = std::move(list);

    const CoherenceViolation &first = v.front();
    throw SimError("coherence violation: " + first.invariant + " at " +
                       hexAddr(first.addr) + " (" + first.detail + ")" +
                       (v.size() > 1 ? ", +" + std::to_string(v.size() - 1) +
                            " more"
                                     : ""),
                   d.dump(2));
}

Json
CoherenceChecker::overheadReport() const
{
    Json r = Json::object();
    r["checks"] = checks_;
    r["full_audits"] = fullAudits_;
    r["wall_seconds"] = wallSeconds_;
    r["mean_us_per_check"] =
        checks_ ? 1e6 * wallSeconds_ / static_cast<double>(checks_) : 0.0;
    return r;
}

} // namespace ccache::verify
