/**
 * @file
 * CoherenceChecker: shadow-state MESI auditor (DESIGN.md §9).
 *
 * CC operations acquire coherence permissions exactly like ordinary
 * loads and stores (Section IV-C), so every cycle/energy number this
 * simulator reproduces rests on the directory protocol staying sound —
 * including across in-place/near-place ops and the fault ladder's RISC
 * refill+remap rung. The checker audits the real cache arrays and
 * directories after every hierarchy transaction and CC instruction:
 *
 *  - SWMR: at most one core holds a writable (E/M) copy of a block in
 *    its private L1/L2, and no other core holds ANY valid copy while a
 *    writable copy exists (no M+S coexistence).
 *  - Inclusion: a valid L1 line is present in the same core's L2; a
 *    valid L2 line is present in the block's home L3 slice.
 *  - Directory agreement: every real private copy is covered by its
 *    home directory entry (sharer bit set; a writable copy's core is
 *    the recorded owner), and a tracked block is resident in its home
 *    slice. The directory may legally over-approximate — claim sharers
 *    or an owner with no surviving real copy — because exclusive
 *    grants are recorded before a fill that pinned CC operand sets can
 *    still refuse (Section IV-E back-pressure); the checker is strict
 *    only in the reality ⊆ directory direction.
 *
 * A violation throws SimError carrying a JSON diagnostic of every
 * failed invariant at that address. The per-transaction hook audits
 * the touched block plus, every auditInterval transactions, the entire
 * reachable state (all private lines + all directory entries), keeping
 * overhead bounded; overheadReport() quantifies the cost. Wall-clock
 * time is accumulated only inside the checker object — never in a
 * StatRegistry — so enabling it cannot perturb the determinism
 * contract (DESIGN.md §8).
 */

#ifndef CCACHE_VERIFY_COHERENCE_CHECKER_HH
#define CCACHE_VERIFY_COHERENCE_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/json.hh"
#include "common/types.hh"

namespace ccache::verify {

/** Checker knobs. */
struct CoherenceCheckerParams
{
    /** Full-state audit every N per-transaction checks (1 = every
     *  transaction, as the unit tests use; 0 disables sampling and
     *  leaves only the per-address checks). */
    std::uint64_t auditInterval = 64;

    /** Violations detailed in one SimError diagnostic. */
    std::size_t maxViolationsReported = 8;
};

/** One failed invariant at one block address. */
struct CoherenceViolation
{
    std::string invariant;   ///< e.g. "swmr", "inclusion.l1_l2"
    Addr addr = 0;
    std::string detail;
};

/** See file header. Install via Hierarchy/CcController::setChecker. */
class CoherenceChecker
{
  public:
    explicit CoherenceChecker(cache::Hierarchy &hier,
                              const CoherenceCheckerParams &params = {});

    const CoherenceCheckerParams &params() const { return params_; }

    /**
     * Transaction hook: audit @p addr, plus a sampled full audit.
     * Throws SimError on any violation. Called by the hierarchy after
     * every read/write/fetch and by the CC controller for every operand
     * block of a completed instruction.
     */
    void onTransaction(Addr addr);

    /** Unsampled full audit that throws on violations (used after
     *  flushAll, where ALL state must be gone). */
    void checkNow();

    /** Non-throwing audits, for tests and diagnostics. @{ */
    std::vector<CoherenceViolation> auditAddr(Addr addr);
    std::vector<CoherenceViolation> auditAll();
    /** @} */

    /** Work done so far. @{ */
    std::uint64_t checksRun() const { return checks_; }
    std::uint64_t fullAudits() const { return fullAudits_; }
    /** @} */

    /**
     * Measured cost of the enabled checker: wall-clock seconds spent
     * auditing, check counts, and mean microseconds per check. Kept out
     * of the stats registry so results stay byte-identical (§8).
     */
    Json overheadReport() const;

  private:
    /** Audit one address into @p out (no throw, no accounting). */
    void auditAddrInto(Addr addr, std::vector<CoherenceViolation> &out);

    [[noreturn]] void raise(const std::vector<CoherenceViolation> &v);

    cache::Hierarchy &hier_;
    CoherenceCheckerParams params_;
    std::uint64_t checks_ = 0;
    std::uint64_t fullAudits_ = 0;
    double wallSeconds_ = 0.0;
};

} // namespace ccache::verify

#endif // CCACHE_VERIFY_COHERENCE_CHECKER_HH
