#include "verify/watchdog.hh"

#include <cstdio>

#include "common/logging.hh"

namespace ccache::verify {

namespace {

std::string
hexAddr(Addr addr)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
}

} // namespace

void
ProgressWatchdog::remember(std::string event)
{
    recent_.push_back(std::move(event));
    while (recent_.size() > params_.recentEventCapacity)
        recent_.pop_front();
}

void
ProgressWatchdog::beginTransaction(const char *kind, Addr addr)
{
    txnKind_ = kind;
    txnAddr_ = addr;
    ringInTxn_ = 0;
    dirInTxn_ = 0;
    ++transactions_;
    remember(std::string("txn ") + kind + " " + hexAddr(addr));
}

void
ProgressWatchdog::beginInstruction(const char *name)
{
    instrName_ = name;
    retriesInInstr_ = 0;
    ++instructions_;
    remember(std::string("instr ") + name);
}

void
ProgressWatchdog::noteRingMessage(unsigned src, unsigned dst)
{
    ++ringInTxn_;
    if (ringInTxn_ > params_.maxRingMessagesPerTransaction) {
        remember("ring " + std::to_string(src) + "->" +
                 std::to_string(dst));
        stall("ring_messages_per_transaction", ringInTxn_,
              params_.maxRingMessagesPerTransaction);
    }
}

void
ProgressWatchdog::noteDirectoryOp(const char *op, Addr addr)
{
    ++dirInTxn_;
    if (dirInTxn_ > params_.maxDirectoryOpsPerTransaction) {
        remember(std::string("dir ") + op + " " + hexAddr(addr));
        stall("directory_ops_per_transaction", dirInTxn_,
              params_.maxDirectoryOpsPerTransaction);
    }
}

void
ProgressWatchdog::noteRetry(const char *stage, Addr addr)
{
    ++retriesInInstr_;
    remember(std::string("retry ") + stage + " " + hexAddr(addr));
    if (retriesInInstr_ > params_.maxRetriesPerInstruction)
        stall("retries_per_instruction", retriesInInstr_,
              params_.maxRetriesPerInstruction);
}

Json
ProgressWatchdog::diagnostic() const
{
    Json d = Json::object();

    Json txn = Json::object();
    txn["kind"] = txnKind_;
    txn["addr"] = hexAddr(txnAddr_);
    d["transaction"] = std::move(txn);
    d["instruction"] = instrName_;

    Json counters = Json::object();
    counters["ring_messages_in_transaction"] = ringInTxn_;
    counters["directory_ops_in_transaction"] = dirInTxn_;
    counters["retries_in_instruction"] = retriesInInstr_;
    counters["transactions"] = transactions_;
    counters["instructions"] = instructions_;
    d["counters"] = std::move(counters);

    Json events = Json::array();
    for (const std::string &e : recent_)
        events.push(e);
    d["recent_events"] = std::move(events);

    if (!serveContext_.isNull())
        d["serve"] = serveContext_;
    if (context_)
        d["context"] = context_();
    return d;
}

void
ProgressWatchdog::stall(const char *bound, std::uint64_t count,
                        std::uint64_t limit)
{
    ++stalls_;
    Json d = diagnostic();
    d["stalled_bound"] = bound;
    d["count"] = count;
    d["limit"] = limit;
    std::string diag = d.dump(2);
    throw SimError("watchdog: no forward progress (" + std::string(bound) +
                       " = " + std::to_string(count) + " exceeds " +
                       std::to_string(limit) + " during " + txnKind_ +
                       " of " + hexAddr(txnAddr_) + ")",
                   diag);
}

} // namespace ccache::verify
