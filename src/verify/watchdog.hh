/**
 * @file
 * ProgressWatchdog: bounded-progress detection for the coherence and
 * compute-cache transaction machinery (DESIGN.md §9).
 *
 * The simulator's transactions are atomic walks (hierarchy access) or
 * bounded retry ladders (CC operand staging, fault re-sensing); every
 * one of them must finish in a number of NoC messages / directory
 * operations / retries bounded by the machine geometry. A livelocked
 * transaction therefore shows up as one of those counters running away
 * long before a human notices the hang. The watchdog counts them
 * against configurable ceilings and, on a breach, throws SimError
 * carrying a structured JSON diagnostic — the offending transaction,
 * all counters, the last N progress events, and whatever the installed
 * context provider contributes (pending directory entries, clocks) —
 * instead of letting the run spin or die blind.
 *
 * Counters reset at every (re-)entered transaction or instruction, so
 * the ceilings bound a single transaction phase, not a whole run.
 */

#ifndef CCACHE_VERIFY_WATCHDOG_HH
#define CCACHE_VERIFY_WATCHDOG_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/json.hh"
#include "common/types.hh"

namespace ccache::verify {

/** Progress ceilings. Defaults are sized for the Table IV machine
 *  (8 cores): orders of magnitude above any legal transaction, low
 *  enough to fire within microseconds of a real livelock. */
struct WatchdogParams
{
    /** Ring messages one hierarchy transaction may send. A legal
     *  transaction touches each core a small constant number of times
     *  (recall + invalidate + data), so 64 per core is generous. */
    std::uint64_t maxRingMessagesPerTransaction = 4096;

    /** Directory mutations one hierarchy transaction may perform. */
    std::uint64_t maxDirectoryOpsPerTransaction = 4096;

    /** Retry-ladder steps (operand-lock retries + fault re-senses) one
     *  CC instruction may take across all of its block ops. */
    std::uint64_t maxRetriesPerInstruction = 65536;

    /** Progress events kept for the stall diagnostic. */
    std::size_t recentEventCapacity = 16;
};

/** See file header. Install via Hierarchy/CcController::setWatchdog. */
class ProgressWatchdog
{
  public:
    explicit ProgressWatchdog(const WatchdogParams &params = {})
        : params_(params)
    {
    }

    const WatchdogParams &params() const { return params_; }

    /** Extra context merged into a stall diagnostic (directory entry
     *  counts, pending transactions); called only when a stall fires. */
    void setContextProvider(std::function<Json()> provider)
    {
        context_ = std::move(provider);
    }

    /**
     * Serving-layer attribution (DESIGN.md §12): the BatchScheduler
     * installs the in-flight wave's request ids and owning tenants
     * before issuing it, so a stall that fires inside a served CC
     * instruction names the victims in its diagnostic — chaos-run
     * stall reports are actionable, not anonymous. Cleared after the
     * wave completes; a null Json clears explicitly. @{
     */
    void setServeContext(Json ctx) { serveContext_ = std::move(ctx); }
    void clearServeContext() { serveContext_ = Json(); }
    /** @} */

    /** A hierarchy transaction (read/write/fetch) starts; resets the
     *  per-transaction counters. */
    void beginTransaction(const char *kind, Addr addr);

    /** A CC instruction starts; resets the retry counter. */
    void beginInstruction(const char *name);

    /** Progress notes from the instrumented components. @{ */
    void noteRingMessage(unsigned src, unsigned dst);
    void noteDirectoryOp(const char *op, Addr addr);
    void noteRetry(const char *stage, Addr addr);
    /** @} */

    /** Snapshot of the current diagnostic (also embedded in the
     *  SimError a stall throws). */
    Json diagnostic() const;

    /** Stalls detected over this watchdog's lifetime. */
    std::uint64_t stallsDetected() const { return stalls_; }

  private:
    [[noreturn]] void stall(const char *bound, std::uint64_t count,
                            std::uint64_t limit);
    void remember(std::string event);

    WatchdogParams params_;
    std::function<Json()> context_;
    Json serveContext_;

    std::string txnKind_ = "none";
    Addr txnAddr_ = 0;
    std::string instrName_ = "none";

    std::uint64_t ringInTxn_ = 0;
    std::uint64_t dirInTxn_ = 0;
    std::uint64_t retriesInInstr_ = 0;

    std::uint64_t transactions_ = 0;
    std::uint64_t instructions_ = 0;
    std::uint64_t stalls_ = 0;

    std::deque<std::string> recent_;
};

} // namespace ccache::verify

#endif // CCACHE_VERIFY_WATCHDOG_HH
