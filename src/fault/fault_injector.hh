/**
 * @file
 * Deterministic fault injection for bit-line Compute Caches.
 *
 * Compute Caches' central circuit risk (Sections II-B, IV-B, IV-I) is
 * that dual-word-line activation senses with reduced margin and that
 * in-place operations bypass the normal per-word ECC read path. This
 * injector models the resulting silicon failure modes so the rest of the
 * simulator can evaluate detection coverage and graceful degradation:
 *
 *  - transient (soft-error) bit flips striking an operand as it is
 *    sensed: single-bit (SECDED-correctable), double-bit in one word
 *    (detected, uncorrectable) and 3-bit bursts in one word (alias to a
 *    miscorrection -> the silent-corruption channel);
 *  - stuck-at cells, deterministic in location (keyed by the block's
 *    physical placement), which persist across retries and only clear
 *    when the line is discarded and remapped;
 *  - sensing-margin failures that fire only on dual-row activations --
 *    single-row (near-place, baseline read) sensing always sees full
 *    margin;
 *  - background upsets that strike resident blocks between
 *    instructions, accumulating as latent errors until an access or the
 *    scrubber corrects them.
 *
 * Every decision is drawn from one seeded xoshiro stream (event draws)
 * or a pure location hash (stuck-at cells, weak-sub-array selection), so
 * a fixed seed plus a fixed instruction stream reproduces the exact same
 * fault history -- the property the ablation benches and tests rely on.
 * With FaultParams::enabled false no stream is consumed and no state is
 * touched, keeping fault-free runs bit-identical to a build without the
 * subsystem.
 */

#ifndef CCACHE_FAULT_FAULT_INJECTOR_HH
#define CCACHE_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitvector.hh"
#include "common/block.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace ccache::fault {

/** Classes of injected faults. */
enum class FaultKind {
    None,
    TransientSingle,  ///< one flipped bit; SECDED corrects it
    TransientDouble,  ///< two flipped bits in one word; detected only
    TransientBurst,   ///< three adjacent flips in one word; may alias
    StuckAt,          ///< persistent cell defect at a fixed location
    MarginFail,       ///< dual-row sense margin collapse (detected)
};

const char *toString(FaultKind kind);

/** One concrete fault: which bits of a 64-byte block are wrong. */
struct FaultEvent
{
    FaultKind kind = FaultKind::None;
    unsigned nbits = 0;
    std::array<unsigned, 3> bits{};  ///< positions within the 512 bits

    bool none() const { return kind == FaultKind::None; }
};

/** Injection rates and knobs. All rates are probabilities per event. */
struct FaultParams
{
    /** Master switch; false means no draws, no state, no cost. */
    bool enabled = false;

    /** Seed for the event stream and the location hashes. */
    std::uint64_t seed = 1;

    /** P(transient upset per sensed operand block). */
    double transientPerBlockOp = 0.0;

    /** Fraction of transients flipping two bits of one word. */
    double doubleBitFraction = 0.1;

    /** Fraction of transients flipping a 3-bit burst in one word
     *  (beyond SECDED: the silent-corruption channel). */
    double burstFraction = 0.0;

    /** P(a block's cells contain a stuck bit), by physical location. */
    double stuckAtPerBlock = 0.0;

    /** Fraction of stuck blocks with two stuck bits in one word
     *  (uncorrectable until the line is discarded and remapped). */
    double stuckAtDoubleFraction = 0.0;

    /** P(sense-margin failure per dual-row activation). */
    double marginFailPerDualRowOp = 0.0;

    /** P(a background upset strikes some resident block, per
     *  instruction). Latent until an access or the scrubber finds it. */
    double backgroundUpsetPerInstr = 0.0;

    /** Process variation: this fraction of sub-arrays is "weak" and
     *  draws at weakSubarrayScale times the configured rates. @{ */
    double weakSubarrayFraction = 0.0;
    double weakSubarrayScale = 4.0;
    /** @} */

    /** Throws FatalError when a rate is outside [0, 1] or the scale is
     *  negative. */
    void validate() const;
};

/** Stable identifier of one physical sub-array (or block partition)
 *  across the hierarchy, for per-sub-array rate scaling. */
constexpr std::uint64_t
subarrayId(CacheLevel level, unsigned cache_index, std::size_t partition)
{
    return (static_cast<std::uint64_t>(level) << 48) ^
           (static_cast<std::uint64_t>(cache_index) << 24) ^
           static_cast<std::uint64_t>(partition);
}

/** The injector: one per controller (or per sub-array under test). */
class FaultInjector
{
  public:
    FaultInjector() : FaultInjector(FaultParams{}) {}
    explicit FaultInjector(const FaultParams &params);

    const FaultParams &params() const { return params_; }
    bool enabled() const { return params_.enabled; }

    /**
     * Swap the injection rates mid-run (validated). The event stream's
     * RNG state is preserved — changing rates never rewinds or reseeds
     * it — so a run that applies the same parameter schedule at the
     * same points in its instruction stream reproduces the same fault
     * history. The serving layer's chaos harness uses this to raise
     * margin-fail / stuck-at storms on a shard for a bounded window of
     * simulated time (DESIGN.md §12). Location-keyed faults (stuck-at,
     * weak sub-arrays) re-key if the seed changes; pass the original
     * seed to keep them stable across windows.
     */
    void setParams(const FaultParams &params);

    /** Deterministic rate multiplier of one sub-array (1.0, or
     *  weakSubarrayScale for the hash-selected weak fraction). */
    double rateScale(std::uint64_t subarray_id) const;

    /** Draw the transient fault (if any) striking one sensed block. */
    FaultEvent drawOperandFault(std::uint64_t subarray_id);

    /** Draw a dual-row sensing-margin failure. */
    bool drawMarginFailure(std::uint64_t subarray_id);

    /** Draw-free stuck-at defect of the cells currently holding
     *  @p addr in @p subarray_id; identical on every call. */
    FaultEvent stuckAtFault(std::uint64_t subarray_id, Addr addr) const;

    /** After a discard-and-refill the line occupies fresh cells; stuck
     *  defects keyed to the old location no longer apply. @{ */
    void remap(Addr addr);
    bool isRemapped(Addr addr) const;
    /** @} */

    /** Apply an event's bit flips. @{ */
    static void corrupt(Block &block, const FaultEvent &event);
    static void corrupt(BitVector &bits, const FaultEvent &event);
    /** @} */

    /** Uniform draw in [0, bound), consuming the event stream (used by
     *  circuit-level hooks to place margin-failure corruption). */
    std::uint64_t drawBelow(std::uint64_t bound);

    // ---------------------------------------------------------------
    // Background upsets + scrubbing support
    // ---------------------------------------------------------------

    /** Track @p addr as resident (a staged CC operand); the background
     *  upset process and the scrubber walk this set. */
    void noteResident(Addr addr);

    /** Advance the background upset process by one instruction. */
    void backgroundTick();

    /** Latent (not yet corrected) error on @p addr, if any. */
    const FaultEvent *latentAt(Addr addr) const;

    /** Merge the latent flips of @p addr into sensed data. */
    void applyLatent(Addr addr, Block &block) const;

    /** Clear a latent error after correction or refill. */
    void clearLatent(Addr addr);

    /** One scrubber stop: a resident block and its latent fault. */
    struct ScrubVisit
    {
        Addr addr = 0;
        FaultEvent event;
    };

    /** Walk up to @p max_blocks resident blocks round-robin; returns
     *  the visited blocks that carry latent faults and reports the
     *  number of blocks actually visited via @p visited. */
    std::vector<ScrubVisit> scrubVisit(std::size_t max_blocks,
                                       std::size_t *visited);

    /** Introspection for stats and tests. @{ */
    std::uint64_t transientsInjected() const { return transients_; }
    std::uint64_t marginFailsInjected() const { return marginFails_; }
    std::uint64_t backgroundUpsets() const { return upsets_; }
    std::size_t residentBlocks() const { return residents_.size(); }
    std::size_t latentCount() const { return latent_.size(); }
    /** @} */

  private:
    /** Pure location hash mixing the seed with two keys. */
    std::uint64_t locHash(std::uint64_t a, std::uint64_t b) const;

    FaultParams params_;
    Rng rng_;

    std::vector<Addr> residents_;
    std::unordered_set<Addr> residentSet_;
    std::unordered_map<Addr, FaultEvent> latent_;
    std::unordered_set<Addr> remapped_;
    std::size_t scrubCursor_ = 0;

    std::uint64_t transients_ = 0;
    std::uint64_t marginFails_ = 0;
    std::uint64_t upsets_ = 0;
};

} // namespace ccache::fault

#endif // CCACHE_FAULT_FAULT_INJECTOR_HH
