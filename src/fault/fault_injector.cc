#include "fault/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccache::fault {

namespace {

constexpr std::size_t kBlockBits = 8 * kBlockSize;

/** SplitMix64 finalizer: the pure hash behind location-keyed faults. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Map a hash to a uniform double in [0, 1). */
double
hashFrac(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
checkRate(double rate, const char *name)
{
    if (rate < 0.0 || rate > 1.0)
        CC_FATAL("fault rate ", name, " = ", rate, " outside [0, 1]");
}

} // namespace

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::TransientSingle: return "transient-single";
      case FaultKind::TransientDouble: return "transient-double";
      case FaultKind::TransientBurst: return "transient-burst";
      case FaultKind::StuckAt: return "stuck-at";
      case FaultKind::MarginFail: return "margin-fail";
    }
    return "unknown";
}

void
FaultParams::validate() const
{
    checkRate(transientPerBlockOp, "transientPerBlockOp");
    checkRate(doubleBitFraction, "doubleBitFraction");
    checkRate(burstFraction, "burstFraction");
    checkRate(doubleBitFraction + burstFraction,
              "doubleBitFraction + burstFraction");
    checkRate(stuckAtPerBlock, "stuckAtPerBlock");
    checkRate(stuckAtDoubleFraction, "stuckAtDoubleFraction");
    checkRate(marginFailPerDualRowOp, "marginFailPerDualRowOp");
    checkRate(backgroundUpsetPerInstr, "backgroundUpsetPerInstr");
    checkRate(weakSubarrayFraction, "weakSubarrayFraction");
    if (weakSubarrayScale < 0.0)
        CC_FATAL("weakSubarrayScale must be non-negative");
}

FaultInjector::FaultInjector(const FaultParams &params)
    : params_(params), rng_(params.seed)
{
    params_.validate();
}

void
FaultInjector::setParams(const FaultParams &params)
{
    params.validate();
    params_ = params;
}

std::uint64_t
FaultInjector::locHash(std::uint64_t a, std::uint64_t b) const
{
    return mix64(mix64(params_.seed ^ a) ^ b);
}

double
FaultInjector::rateScale(std::uint64_t subarray_id) const
{
    if (params_.weakSubarrayFraction <= 0.0)
        return 1.0;
    std::uint64_t h = locHash(subarray_id, 0x5ca1ab1e);
    return hashFrac(h) < params_.weakSubarrayFraction
        ? params_.weakSubarrayScale
        : 1.0;
}

FaultEvent
FaultInjector::drawOperandFault(std::uint64_t subarray_id)
{
    FaultEvent ev;
    if (!enabled())
        return ev;
    double p = params_.transientPerBlockOp * rateScale(subarray_id);
    if (p <= 0.0 || !rng_.chance(std::min(p, 1.0)))
        return ev;

    ++transients_;
    double r = rng_.uniform();
    if (r < params_.burstFraction) {
        // Three adjacent flips within one word: odd flip count aliases
        // to a SECDED "single-bit" syndrome and miscorrects.
        ev.kind = FaultKind::TransientBurst;
        ev.nbits = 3;
        unsigned word = static_cast<unsigned>(rng_.below(kWordsPerBlock));
        unsigned base = static_cast<unsigned>(rng_.below(62));
        for (unsigned i = 0; i < 3; ++i)
            ev.bits[i] = word * 64 + base + i;
    } else if (r < params_.burstFraction + params_.doubleBitFraction) {
        ev.kind = FaultKind::TransientDouble;
        ev.nbits = 2;
        unsigned word = static_cast<unsigned>(rng_.below(kWordsPerBlock));
        unsigned b1 = static_cast<unsigned>(rng_.below(64));
        unsigned b2 = static_cast<unsigned>(rng_.below(63));
        if (b2 >= b1)
            ++b2;
        ev.bits[0] = word * 64 + b1;
        ev.bits[1] = word * 64 + b2;
    } else {
        ev.kind = FaultKind::TransientSingle;
        ev.nbits = 1;
        ev.bits[0] = static_cast<unsigned>(rng_.below(kBlockBits));
    }
    return ev;
}

bool
FaultInjector::drawMarginFailure(std::uint64_t subarray_id)
{
    if (!enabled())
        return false;
    double p = params_.marginFailPerDualRowOp * rateScale(subarray_id);
    if (p <= 0.0 || !rng_.chance(std::min(p, 1.0)))
        return false;
    ++marginFails_;
    return true;
}

FaultEvent
FaultInjector::stuckAtFault(std::uint64_t subarray_id, Addr addr) const
{
    FaultEvent ev;
    if (!enabled() || params_.stuckAtPerBlock <= 0.0 || isRemapped(addr))
        return ev;
    std::uint64_t h = locHash(subarray_id, addr);
    double p = params_.stuckAtPerBlock * rateScale(subarray_id);
    if (hashFrac(h) >= std::min(p, 1.0))
        return ev;

    // Model stuck-at-wrong-value: the defect always manifests as a flip
    // of the stored bit (conservative relative to value-dependent
    // stuck-at, and independent of data content).
    ev.kind = FaultKind::StuckAt;
    std::uint64_t h2 = mix64(h);
    ev.bits[0] = static_cast<unsigned>(h2 % kBlockBits);
    ev.nbits = 1;
    if (hashFrac(mix64(h2)) < params_.stuckAtDoubleFraction) {
        // Second defective cell in the same word: uncorrectable until
        // the line is discarded and remapped.
        unsigned word = ev.bits[0] / 64;
        unsigned other = static_cast<unsigned>(mix64(h2 + 1) % 63);
        if (other >= ev.bits[0] % 64)
            ++other;
        ev.bits[1] = word * 64 + other;
        ev.nbits = 2;
    }
    return ev;
}

void
FaultInjector::remap(Addr addr)
{
    remapped_.insert(addr);
}

bool
FaultInjector::isRemapped(Addr addr) const
{
    return remapped_.count(addr) != 0;
}

void
FaultInjector::corrupt(Block &block, const FaultEvent &event)
{
    for (unsigned i = 0; i < event.nbits; ++i) {
        unsigned bit = event.bits[i];
        block[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

void
FaultInjector::corrupt(BitVector &bits, const FaultEvent &event)
{
    for (unsigned i = 0; i < event.nbits; ++i) {
        unsigned bit = event.bits[i];
        if (bit < bits.size())
            bits.set(bit, !bits.get(bit));
    }
}

std::uint64_t
FaultInjector::drawBelow(std::uint64_t bound)
{
    return rng_.below(bound);
}

void
FaultInjector::noteResident(Addr addr)
{
    if (!enabled())
        return;
    if (residentSet_.insert(addr).second)
        residents_.push_back(addr);
}

void
FaultInjector::backgroundTick()
{
    if (!enabled() || params_.backgroundUpsetPerInstr <= 0.0 ||
        residents_.empty()) {
        return;
    }
    if (!rng_.chance(std::min(params_.backgroundUpsetPerInstr, 1.0)))
        return;

    ++upsets_;
    Addr victim = residents_[rng_.below(residents_.size())];
    FaultEvent &ev = latent_[victim];
    if (ev.nbits >= 3)
        return;  // already a worst-case burst

    // Upsets accumulate until scrubbed: a second strike on the same
    // word escalates a correctable error into an uncorrectable one --
    // the exposure window Section IV-I's scrubbing alternative bounds.
    unsigned bit;
    if (ev.nbits == 0) {
        bit = static_cast<unsigned>(rng_.below(kBlockBits));
    } else {
        unsigned word = ev.bits[0] / 64;
        bit = word * 64 + static_cast<unsigned>(rng_.below(64));
        for (unsigned i = 0; i < ev.nbits; ++i) {
            if (ev.bits[i] == bit)
                return;  // same cell struck twice: no net change
        }
    }
    ev.bits[ev.nbits++] = bit;
    ev.kind = ev.nbits == 1 ? FaultKind::TransientSingle
            : ev.nbits == 2 ? FaultKind::TransientDouble
                            : FaultKind::TransientBurst;
}

const FaultEvent *
FaultInjector::latentAt(Addr addr) const
{
    auto it = latent_.find(addr);
    return it == latent_.end() ? nullptr : &it->second;
}

void
FaultInjector::applyLatent(Addr addr, Block &block) const
{
    if (const FaultEvent *ev = latentAt(addr))
        corrupt(block, *ev);
}

void
FaultInjector::clearLatent(Addr addr)
{
    latent_.erase(addr);
}

std::vector<FaultInjector::ScrubVisit>
FaultInjector::scrubVisit(std::size_t max_blocks, std::size_t *visited)
{
    std::vector<ScrubVisit> hits;
    std::size_t n = std::min(max_blocks, residents_.size());
    for (std::size_t i = 0; i < n; ++i) {
        Addr addr = residents_[scrubCursor_];
        scrubCursor_ = (scrubCursor_ + 1) % residents_.size();
        if (const FaultEvent *ev = latentAt(addr))
            hits.push_back({addr, *ev});
    }
    if (visited)
        *visited = n;
    return hits;
}

} // namespace ccache::fault
