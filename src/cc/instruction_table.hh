/**
 * @file
 * Instruction table at the L1 CC controller (Section IV-D).
 *
 * Tracks every pending CC instruction: its accumulated result, how many of
 * its simple vector operations have completed, and which simple operation
 * is generated next. The table has a fixed number of entries; a full table
 * back-pressures the core (structural stall).
 */

#ifndef CCACHE_CC_INSTRUCTION_TABLE_HH
#define CCACHE_CC_INSTRUCTION_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cc/isa.hh"

namespace ccache::cc {

/** Handle into the instruction table. */
using InstrId = std::size_t;

/** State of one pending CC instruction. */
struct InstrEntry
{
    CcInstruction instr;
    CoreId core = 0;
    bool valid = false;

    std::size_t totalOps = 0;      ///< simple vector ops to generate
    std::size_t nextOp = 0;        ///< next simple op index to generate
    std::size_t completedOps = 0;  ///< simple ops finished

    std::uint64_t result = 0;      ///< cmp/search result accumulator
    std::uint64_t resultBits = 0;  ///< result bits produced so far

    bool done() const { return completedOps == totalOps; }
};

/** Fixed-capacity instruction table. */
class InstructionTable
{
  public:
    explicit InstructionTable(std::size_t entries = 8);

    std::size_t capacity() const { return entries_.size(); }
    std::size_t occupancy() const;
    bool full() const { return occupancy() == capacity(); }

    /**
     * Allocate an entry for @p instr issued by @p core with
     * @p total_ops simple vector operations. Returns nullopt when full.
     */
    std::optional<InstrId> allocate(const CcInstruction &instr, CoreId core,
                                    std::size_t total_ops);

    /** Access a live entry (asserts on a released id). @{ */
    InstrEntry &entry(InstrId id);
    const InstrEntry &entry(InstrId id) const;
    /** @} */

    /** Generate the next simple-op index; nullopt when all generated. */
    std::optional<std::size_t> nextOp(InstrId id);

    /** Record completion of one simple op, optionally appending result
     *  bits (cmp/search). Returns true when the instruction retires. */
    bool complete(InstrId id, std::uint64_t result_bits = 0,
                  std::size_t nbits = 0);

    /** Free a retired entry (the controller notifies the core first). */
    void release(InstrId id);

  private:
    std::vector<InstrEntry> entries_;
};

} // namespace ccache::cc

#endif // CCACHE_CC_INSTRUCTION_TABLE_HH
