#include "cc/ecc.hh"

#include <bit>

#include "common/types.hh"

namespace ccache::cc {

namespace {

/**
 * Extended Hamming (72,64): the Hamming field spans positions 1..71,
 * with the 7 parity bits at the power-of-two positions and the 64 data
 * bits filling the rest; the 72nd bit is the overall parity that turns
 * single-error correction into double-error detection.
 */
constexpr unsigned kCodeBits = 71;

constexpr bool
isParityPos(unsigned pos)
{
    return (pos & (pos - 1)) == 0;  // 1, 2, 4, ..., 64
}

/** Marker for code positions that hold a parity bit, not a data bit. */
constexpr std::uint8_t kNotData = 0xff;

/**
 * Precomputed code tables. Hamming parity p covers every position with
 * bit p set, so over the 64 *data* bits it is the parity of
 * `data & parityMask[p]` — one AND + popcount per parity instead of a
 * 71-position walk per word. posToDataIdx inverts the position mapping
 * for syndrome decoding. Both tables are derived at compile time from
 * the same position-skipping rule the scalar definition used.
 */
struct SecdedTables
{
    std::array<std::uint64_t, 7> parityMask{};
    std::array<std::uint8_t, kCodeBits + 1> posToDataIdx{};
};

consteval SecdedTables
makeTables()
{
    SecdedTables t{};
    for (auto &entry : t.posToDataIdx)
        entry = kNotData;
    unsigned data_idx = 0;
    for (unsigned pos = 1; pos <= kCodeBits; ++pos) {
        if (isParityPos(pos))
            continue;
        t.posToDataIdx[pos] = static_cast<std::uint8_t>(data_idx);
        for (unsigned p = 0; p < 7; ++p) {
            if (pos & (1u << p))
                t.parityMask[p] |= std::uint64_t{1} << data_idx;
        }
        ++data_idx;
    }
    return t;
}

constexpr SecdedTables kTables = makeTables();

/** Hamming parity bits of the 64 data bits, via the mask tables. */
std::uint8_t
hammingParities(std::uint64_t data)
{
    std::uint8_t parities = 0;
    for (unsigned p = 0; p < 7; ++p) {
        unsigned parity = std::popcount(data & kTables.parityMask[p]) & 1;
        parities |= static_cast<std::uint8_t>(parity << p);
    }
    return parities;
}

} // namespace

std::uint8_t
Secded::encode(std::uint64_t data)
{
    std::uint8_t parities = hammingParities(data);
    // Overall parity covers all data and parity bits.
    bool overall = std::popcount(data) & 1;
    overall ^= std::popcount(static_cast<unsigned>(parities)) & 1;
    return static_cast<std::uint8_t>(parities |
                                     (static_cast<std::uint8_t>(overall)
                                      << 7));
}

EccStatus
Secded::decode(std::uint64_t &data, std::uint8_t check)
{
    // Syndrome: recomputed Hamming parities vs the *stored* ones.
    std::uint8_t syndrome = hammingParities(data) ^ (check & 0x7f);

    // Overall parity is evaluated over the bits as RECEIVED (data plus
    // the stored check byte): even for a clean word, odd for any
    // single-bit error, even again for a double-bit error.
    unsigned received_parity = (std::popcount(data) & 1) ^
        (std::popcount(static_cast<unsigned>(check)) & 1);

    if (syndrome == 0 && received_parity == 0)
        return EccStatus::Ok;

    if (received_parity == 0) {
        // Syndrome set but overall parity consistent: two bits flipped.
        return EccStatus::DetectedDoubleBit;
    }

    // Exactly one bit flipped somewhere in the 72-bit codeword.
    if (syndrome == 0) {
        // The overall parity bit itself; data and Hamming bits are fine.
        return EccStatus::CorrectedSingleBit;
    }
    unsigned pos = syndrome;
    if (pos > kCodeBits)
        return EccStatus::DetectedDoubleBit;
    if (isParityPos(pos))
        return EccStatus::CorrectedSingleBit;  // a stored parity bit

    // Locate which data bit lives at that position and flip it back.
    unsigned data_idx = kTables.posToDataIdx[pos];
    if (data_idx == kNotData) {
        // No data bit maps back to the syndrome position: the syndrome
        // was forged by a multi-bit error pattern, so report it as
        // detected-uncorrectable instead of corrupting a healthy bit.
        return EccStatus::DetectedDoubleBit;
    }
    data ^= std::uint64_t{1} << data_idx;
    return EccStatus::CorrectedSingleBit;
}

bool
Secded::xorIdentityHolds(std::uint64_t a, std::uint64_t b)
{
    return encode(a ^ b) == (encode(a) ^ encode(b));
}

BlockEcc
encodeBlock(const Block &block)
{
    BlockEcc ecc;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w)
        ecc[w] = Secded::encode(blockWord(block, w));
    return ecc;
}

EccStatus
checkBlock(Block &block, const BlockEcc &ecc)
{
    EccStatus worst = EccStatus::Ok;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        std::uint64_t word = blockWord(block, w);
        EccStatus s = Secded::decode(word, ecc[w]);
        if (s == EccStatus::CorrectedSingleBit) {
            setBlockWord(block, w, word);
            if (worst == EccStatus::Ok)
                worst = s;
        } else if (s == EccStatus::DetectedDoubleBit) {
            worst = s;
        }
    }
    return worst;
}

bool
cmpEccMismatch(const Block &a, const BlockEcc &ecc_a, const Block &b,
               const BlockEcc &ecc_b)
{
    // Section IV-I: an error is detected if the data bits match but the
    // ECC bits don't, or vice versa.
    bool data_equal = a == b;
    bool ecc_equal = ecc_a == ecc_b;
    return data_equal != ecc_equal;
}

double
ScrubbingModel::cycleOverhead() const
{
    double scrub_cycles = static_cast<double>(blocks) *
        static_cast<double>(cyclesPerBlock);
    double interval_cycles = intervalMs * 1e-3 * kCoreFreqHz;
    return scrub_cycles / interval_cycles;
}

double
ScrubbingModel::expectedErrorsPerInterval() const
{
    double intervals_per_year = (365.25 * 24 * 3600 * 1000.0) / intervalMs;
    return errorsPerYear / intervals_per_year;
}

} // namespace ccache::cc
