/**
 * @file
 * Operation table (Section IV-D): tracks each simple vector operation —
 * one cache-block-wide slice of a CC instruction — through its operand
 * fetch, issue and completion.
 */

#ifndef CCACHE_CC_OPERATION_TABLE_HH
#define CCACHE_CC_OPERATION_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cc/instruction_table.hh"
#include "common/types.hh"

namespace ccache::cc {

/** Lifecycle of a simple vector operation. */
enum class OpStatus {
    WaitingOperands,  ///< fetch requests outstanding
    Ready,            ///< all operands resident and pinned
    Issued,           ///< command sent to the sub-array
    Done,
};

/** Human-readable status name (logging / test diagnostics). */
const char *toString(OpStatus s);

/** One simple vector operation: operands span at most one cache block. */
struct OpEntry
{
    bool valid = false;
    InstrId instr = 0;
    std::size_t opIndex = 0;      ///< which slice of the instruction

    std::vector<Addr> operands;   ///< block addresses involved
    std::uint32_t fetched = 0;    ///< bit per operand: resident + pinned
    OpStatus status = OpStatus::WaitingOperands;

    bool allFetched() const
    {
        return fetched == (1u << operands.size()) - 1;
    }
};

/** Fixed-capacity operation table. */
class OperationTable
{
  public:
    explicit OperationTable(std::size_t entries = 64);

    std::size_t capacity() const { return entries_.size(); }
    std::size_t occupancy() const;
    bool full() const { return occupancy() == capacity(); }

    /** Allocate an entry; nullopt when full (back-pressure). */
    std::optional<std::size_t> allocate(InstrId instr, std::size_t op_index,
                                        std::vector<Addr> operands);

    OpEntry &entry(std::size_t id);

    /** Mark operand @p idx of op @p id fetched; promotes to Ready when
     *  the operand set completes. */
    void markFetched(std::size_t id, std::size_t idx);

    /** A forwarded coherence request stole operand @p idx: drop it and
     *  fall back to WaitingOperands (Section IV-E lock release). */
    void markLost(std::size_t id, std::size_t idx);

    /** Advance the lifecycle: command sent / result written back. @{ */
    void markIssued(std::size_t id);
    void markDone(std::size_t id);
    /** @} */

    /** Free a completed entry for reuse. */
    void release(std::size_t id);

  private:
    std::vector<OpEntry> entries_;
};

} // namespace ccache::cc

#endif // CCACHE_CC_OPERATION_TABLE_HH
