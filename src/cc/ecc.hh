/**
 * @file
 * Error detection and correction for Compute Caches (Section IV-I).
 *
 * Implements a (72,64) SECDED Hamming code per 64-bit word. Because the
 * code is linear over GF(2), ECC(A xor B) == ECC(A) xor ECC(B) — the
 * identity the paper's first alternative exploits to check operand
 * integrity alongside in-place logical operations. The second
 * alternative, idle-cycle cache scrubbing, is modeled as a cost/coverage
 * estimator.
 */

#ifndef CCACHE_CC_ECC_HH
#define CCACHE_CC_ECC_HH

#include <array>
#include <cstdint>
#include <optional>

#include "common/block.hh"

namespace ccache::cc {

/** Outcome of an ECC check. */
enum class EccStatus {
    Ok,
    CorrectedSingleBit,
    DetectedDoubleBit,
};

/** (72,64) SECDED codec for one 64-bit word. */
class Secded
{
  public:
    /** 8-bit check code (7 Hamming bits + overall parity). */
    static std::uint8_t encode(std::uint64_t data);

    /** Check and correct @p data in place.
     *  @return status; on CorrectedSingleBit, @p data (or the check bits)
     *  has been repaired; DetectedDoubleBit is uncorrectable. */
    static EccStatus decode(std::uint64_t &data, std::uint8_t check);

    /** The linearity identity used for in-place logical ops:
     *  encode(a ^ b) == encode(a) ^ encode(b). */
    static bool xorIdentityHolds(std::uint64_t a, std::uint64_t b);
};

/** ECC codes for one 64-byte block: one SECDED code per word. */
using BlockEcc = std::array<std::uint8_t, kWordsPerBlock>;

/** Encode all eight words of a block. */
BlockEcc encodeBlock(const Block &block);

/** Check a block against stored codes; corrects single-bit errors. */
EccStatus checkBlock(Block &block, const BlockEcc &ecc);

/**
 * ECC handling rules per CC operation (Section IV-I):
 *  - copy: the ECC is copied with the data;
 *  - buz: ECC of the zero block is installed;
 *  - cmp/search: compare data AND codes; mismatch patterns reveal errors;
 *  - logical ops: either route xor( A, B ) + xor( ECCs ) through the ECC
 *    logic unit (extra transfers) or rely on scrubbing.
 */
enum class EccStrategy {
    XorCheckUnit,   ///< alternative 1: xor identity via the ECC logic unit
    Scrubbing,      ///< alternative 2: periodic idle-cycle scrubbing
};

/** Compare-style ECC check: an error is flagged when data equality and
 *  code equality disagree (Section IV-I). */
bool cmpEccMismatch(const Block &a, const BlockEcc &ecc_a, const Block &b,
                    const BlockEcc &ecc_b);

/** Cost/coverage model for the scrubbing alternative. */
struct ScrubbingModel
{
    /** Soft-error rate for the whole cache, errors per year
     *  (Section IV-I cites 0.7-7 errors/year). */
    double errorsPerYear = 7.0;

    /** Scrub interval in milliseconds. */
    double intervalMs = 100.0;

    /** Cache capacity in 64-byte blocks. */
    std::size_t blocks = 262144;  ///< 16 MB LLC

    /** Cycles to scrub one block (read + check). */
    Cycles cyclesPerBlock = 4;

    /** Fraction of all cycles spent scrubbing at 2.66 GHz. */
    double cycleOverhead() const;

    /** Expected number of errors that strike between two scrubs (the
     *  window in which an in-place op could consume a stale bit). */
    double expectedErrorsPerInterval() const;
};

} // namespace ccache::cc

#endif // CCACHE_CC_ECC_HH
