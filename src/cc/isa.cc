#include "cc/isa.hh"

#include <algorithm>
#include <sstream>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cc {

const char *
toString(CcOpcode op)
{
    switch (op) {
      case CcOpcode::Copy: return "cc_copy";
      case CcOpcode::Buz: return "cc_buz";
      case CcOpcode::Cmp: return "cc_cmp";
      case CcOpcode::Search: return "cc_search";
      case CcOpcode::And: return "cc_and";
      case CcOpcode::Or: return "cc_or";
      case CcOpcode::Xor: return "cc_xor";
      case CcOpcode::Clmul: return "cc_clmul";
      case CcOpcode::Not: return "cc_not";
      case CcOpcode::Add: return "cc_add";
      case CcOpcode::Sub: return "cc_sub";
      case CcOpcode::Mul: return "cc_mul";
      case CcOpcode::Lt: return "cc_lt";
      case CcOpcode::Gt: return "cc_gt";
      case CcOpcode::Eq: return "cc_eq";
    }
    return "?";
}

bool
isCcR(CcOpcode op)
{
    // Exhaustive on purpose: a new opcode must be classified here or the
    // metadata tests fail (satellite of the bit-serial PR). The
    // bit-serial predicates are CC-RW -- their per-lane masks exceed a
    // 64-bit register, so they land in a destination slice instead.
    switch (op) {
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        return true;
      case CcOpcode::Copy:
      case CcOpcode::Buz:
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
      case CcOpcode::Not:
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return false;
    }
    return false;
}

unsigned
numAddrOperands(CcOpcode op)
{
    switch (op) {
      case CcOpcode::Buz:
        return 1;
      case CcOpcode::Copy:
      case CcOpcode::Cmp:
      case CcOpcode::Search:
      case CcOpcode::Not:
        return 2;
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return 3;
    }
    return 0;
}

bool
isBitSerial(CcOpcode op)
{
    switch (op) {
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return true;
      default:
        return false;
    }
}

bool
isBitSerialCompare(CcOpcode op)
{
    return op == CcOpcode::Lt || op == CcOpcode::Gt || op == CcOpcode::Eq;
}

CcInstruction
CcInstruction::copy(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Copy;
    i.src1 = a;
    i.dest = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::buz(Addr a, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Buz;
    i.dest = a;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::cmp(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Cmp;
    i.src1 = a;
    i.src2 = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::search(Addr a, Addr k, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Search;
    i.src1 = a;
    i.src2 = k;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::logicalAnd(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::And;
    i.src1 = a;
    i.src2 = b;
    i.dest = c;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::logicalOr(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Or;
    return i;
}

CcInstruction
CcInstruction::logicalXor(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Xor;
    return i;
}

CcInstruction
CcInstruction::logicalNot(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Not;
    i.src1 = a;
    i.dest = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::clmul(Addr a, Addr b, Addr c, std::size_t n,
                     std::size_t word_bits)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Clmul;
    i.clmulWordBits = word_bits;
    return i;
}

CcInstruction
CcInstruction::clmulReplicated(Addr a, Addr b_block, Addr c, std::size_t n,
                               std::size_t word_bits)
{
    CcInstruction i = clmul(a, b_block, c, n, word_bits);
    i.src2Replicated = true;
    return i;
}

CcInstruction
CcInstruction::add(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                   std::size_t width)
{
    CcInstruction i;
    i.op = CcOpcode::Add;
    i.src1 = a;
    i.src2 = b;
    i.dest = c;
    i.size = slice_bytes;
    i.laneBits = width;
    return i;
}

CcInstruction
CcInstruction::sub(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                   std::size_t width)
{
    CcInstruction i = add(a, b, c, slice_bytes, width);
    i.op = CcOpcode::Sub;
    return i;
}

CcInstruction
CcInstruction::mul(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                   std::size_t width)
{
    CcInstruction i = add(a, b, c, slice_bytes, width);
    i.op = CcOpcode::Mul;
    return i;
}

CcInstruction
CcInstruction::cmpLt(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                     std::size_t width, bool is_signed)
{
    CcInstruction i = add(a, b, c, slice_bytes, width);
    i.op = CcOpcode::Lt;
    i.isSigned = is_signed;
    return i;
}

CcInstruction
CcInstruction::cmpGt(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                     std::size_t width, bool is_signed)
{
    CcInstruction i = cmpLt(a, b, c, slice_bytes, width, is_signed);
    i.op = CcOpcode::Gt;
    return i;
}

CcInstruction
CcInstruction::cmpEq(Addr a, Addr b, Addr c, std::size_t slice_bytes,
                     std::size_t width)
{
    CcInstruction i = add(a, b, c, slice_bytes, width);
    i.op = CcOpcode::Eq;
    return i;
}

std::vector<Addr>
CcInstruction::operandAddrs() const
{
    switch (op) {
      case CcOpcode::Buz:
        return {dest};
      case CcOpcode::Copy:
      case CcOpcode::Not:
        return {src1, dest};
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        return {src1, src2};
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return {src1, src2, dest};
    }
    return {};
}

std::size_t
CcInstruction::sliceCount(Addr base) const
{
    if (!isBitSerial(op))
        CC_PANIC("sliceCount is a bit-serial helper");
    if (base == dest && isBitSerialCompare(op))
        return 1;                    // one predicate slice
    return laneBits;                 // full bit-slice stack
}

std::vector<Addr>
CcInstruction::writtenAddrs() const
{
    if (isCcR(op))
        return {};
    return {dest};
}

void
CcInstruction::validate() const
{
    if (size == 0)
        CC_FATAL(toString(), ": zero-length vector");
    if (size > kMaxVectorBytes)
        CC_FATAL(toString(), ": vector size ", size, " exceeds ",
                 kMaxVectorBytes);
    if (size % 8 != 0)
        CC_FATAL(toString(), ": vector size ", size,
                 " is not a word multiple");
    if (isCcR(op) && size > kMaxCmpBytes)
        CC_FATAL(toString(), ": cmp/search limited to ", kMaxCmpBytes,
                 " bytes so the result fits a 64-bit register");
    if (op == CcOpcode::Clmul && clmulWordBits != 64 &&
        clmulWordBits != 128 && clmulWordBits != 256) {
        CC_FATAL(toString(), ": clmul word width must be 64/128/256");
    }
    for (Addr a : operandAddrs()) {
        if (!isAligned(a, kBlockSize))
            CC_FATAL(toString(), ": operand 0x", std::hex, a,
                     " is not 64-byte aligned");
    }
    if (isBitSerial(op)) {
        if (laneBits < 1 || laneBits > kMaxBitSerialWidth)
            CC_FATAL(toString(), ": lane width ", laneBits,
                     " outside 1..", kMaxBitSerialWidth);
        if (size % kBlockSize != 0)
            CC_FATAL(toString(), ": bit-slice bytes ", size,
                     " must be whole 64-byte blocks");
        if (size > kSliceStride)
            CC_FATAL(toString(), ": bit-slice bytes ", size,
                     " exceed the slice stride ", kSliceStride);
        // Page-aligned bases give the transposed layout its locality
        // guarantee (see kSliceStride) and keep every slice row inside
        // one page.
        for (Addr a : operandAddrs()) {
            if (!isAligned(a, kSliceStride))
                CC_FATAL(toString(), ": transposed operand 0x", std::hex,
                         a, std::dec, " is not slice-stride aligned");
        }
        if (op == CcOpcode::Mul) {
            // The accumulator is read-modify-written per partial
            // product; overlapping a source would corrupt it.
            Addr dlo = dest;
            Addr dhi = dest + laneBits * kSliceStride;
            for (Addr s : {src1, src2}) {
                if (s < dhi && dlo < s + laneBits * kSliceStride)
                    CC_FATAL(toString(),
                             ": mul destination overlaps a source");
            }
        }
    }
}

bool
CcInstruction::spansPage() const
{
    // Bit-serial operands are addressed slice-by-slice and validate()
    // already rejects any slice that crosses a page, so the Section IV-D
    // exception never fires for them.
    if (isBitSerial(op))
        return false;
    // The key operand of search is a single 64-byte block; all other
    // operands cover the full vector size.
    for (Addr a : operandAddrs()) {
        std::size_t span = size;
        if ((op == CcOpcode::Search || src2Replicated) && a == src2)
            span = kSearchKeyBytes;
        else if (src2Replicated && a == dest)
            span = divCeil(size / kBlockSize * clmulBitsPerBlock(),
                           8 * kBlockSize) * kBlockSize;
        if (alignDown(a, kPageSize) != alignDown(a + span - 1, kPageSize))
            return true;
    }
    return false;
}

std::vector<CcInstruction>
CcInstruction::splitAtPageBoundaries() const
{
    CC_ASSERT(!isBitSerial(op),
              "bit-serial instructions never raise the page-split "
              "exception (spansPage() is false by construction)");
    std::vector<CcInstruction> pieces;
    std::size_t done = 0;
    while (done < size) {
        // Next page boundary over any operand bounds this piece.
        std::size_t chunk = size - done;
        for (Addr a : operandAddrs()) {
            if ((op == CcOpcode::Search || src2Replicated) && a == src2)
                continue;  // the key / replicated block does not advance
            Addr cur = a + done;
            std::size_t to_boundary =
                static_cast<std::size_t>(alignDown(cur, kPageSize) +
                                         kPageSize - cur);
            chunk = std::min(chunk, to_boundary);
        }
        CcInstruction piece = *this;
        piece.src1 = src1 + done;
        if (op != CcOpcode::Search && !src2Replicated)
            piece.src2 = src2 ? src2 + done : 0;
        piece.dest = dest ? dest + done : 0;
        piece.size = chunk;
        pieces.push_back(piece);
        done += chunk;
    }
    return pieces;
}

std::string
CcInstruction::toString() const
{
    std::ostringstream os;
    os << cc::toString(op);
    if (op == CcOpcode::Clmul)
        os << clmulWordBits;
    if (isBitSerial(op)) {
        os << laneBits;
        if (op == CcOpcode::Lt || op == CcOpcode::Gt)
            os << (isSigned ? "s" : "u");
    }
    os << std::hex;
    for (Addr a : operandAddrs())
        os << " 0x" << a;
    os << std::dec << " " << size;
    return os.str();
}

} // namespace ccache::cc
