#include "cc/isa.hh"

#include <algorithm>
#include <sstream>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cc {

const char *
toString(CcOpcode op)
{
    switch (op) {
      case CcOpcode::Copy: return "cc_copy";
      case CcOpcode::Buz: return "cc_buz";
      case CcOpcode::Cmp: return "cc_cmp";
      case CcOpcode::Search: return "cc_search";
      case CcOpcode::And: return "cc_and";
      case CcOpcode::Or: return "cc_or";
      case CcOpcode::Xor: return "cc_xor";
      case CcOpcode::Clmul: return "cc_clmul";
      case CcOpcode::Not: return "cc_not";
    }
    return "?";
}

bool
isCcR(CcOpcode op)
{
    return op == CcOpcode::Cmp || op == CcOpcode::Search;
}

unsigned
numAddrOperands(CcOpcode op)
{
    switch (op) {
      case CcOpcode::Buz:
        return 1;
      case CcOpcode::Copy:
      case CcOpcode::Cmp:
      case CcOpcode::Search:
      case CcOpcode::Not:
        return 2;
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
        return 3;
    }
    return 0;
}

CcInstruction
CcInstruction::copy(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Copy;
    i.src1 = a;
    i.dest = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::buz(Addr a, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Buz;
    i.dest = a;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::cmp(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Cmp;
    i.src1 = a;
    i.src2 = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::search(Addr a, Addr k, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Search;
    i.src1 = a;
    i.src2 = k;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::logicalAnd(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::And;
    i.src1 = a;
    i.src2 = b;
    i.dest = c;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::logicalOr(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Or;
    return i;
}

CcInstruction
CcInstruction::logicalXor(Addr a, Addr b, Addr c, std::size_t n)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Xor;
    return i;
}

CcInstruction
CcInstruction::logicalNot(Addr a, Addr b, std::size_t n)
{
    CcInstruction i;
    i.op = CcOpcode::Not;
    i.src1 = a;
    i.dest = b;
    i.size = n;
    return i;
}

CcInstruction
CcInstruction::clmul(Addr a, Addr b, Addr c, std::size_t n,
                     std::size_t word_bits)
{
    CcInstruction i = logicalAnd(a, b, c, n);
    i.op = CcOpcode::Clmul;
    i.clmulWordBits = word_bits;
    return i;
}

CcInstruction
CcInstruction::clmulReplicated(Addr a, Addr b_block, Addr c, std::size_t n,
                               std::size_t word_bits)
{
    CcInstruction i = clmul(a, b_block, c, n, word_bits);
    i.src2Replicated = true;
    return i;
}

std::vector<Addr>
CcInstruction::operandAddrs() const
{
    switch (op) {
      case CcOpcode::Buz:
        return {dest};
      case CcOpcode::Copy:
      case CcOpcode::Not:
        return {src1, dest};
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        return {src1, src2};
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
        return {src1, src2, dest};
    }
    return {};
}

std::vector<Addr>
CcInstruction::writtenAddrs() const
{
    if (isCcR(op))
        return {};
    return {dest};
}

void
CcInstruction::validate() const
{
    if (size == 0)
        CC_FATAL(toString(), ": zero-length vector");
    if (size > kMaxVectorBytes)
        CC_FATAL(toString(), ": vector size ", size, " exceeds ",
                 kMaxVectorBytes);
    if (size % 8 != 0)
        CC_FATAL(toString(), ": vector size ", size,
                 " is not a word multiple");
    if (isCcR(op) && size > kMaxCmpBytes)
        CC_FATAL(toString(), ": cmp/search limited to ", kMaxCmpBytes,
                 " bytes so the result fits a 64-bit register");
    if (op == CcOpcode::Clmul && clmulWordBits != 64 &&
        clmulWordBits != 128 && clmulWordBits != 256) {
        CC_FATAL(toString(), ": clmul word width must be 64/128/256");
    }
    for (Addr a : operandAddrs()) {
        if (!isAligned(a, kBlockSize))
            CC_FATAL(toString(), ": operand 0x", std::hex, a,
                     " is not 64-byte aligned");
    }
}

bool
CcInstruction::spansPage() const
{
    // The key operand of search is a single 64-byte block; all other
    // operands cover the full vector size.
    for (Addr a : operandAddrs()) {
        std::size_t span = size;
        if ((op == CcOpcode::Search || src2Replicated) && a == src2)
            span = kSearchKeyBytes;
        else if (src2Replicated && a == dest)
            span = divCeil(size / kBlockSize * clmulBitsPerBlock(),
                           8 * kBlockSize) * kBlockSize;
        if (alignDown(a, kPageSize) != alignDown(a + span - 1, kPageSize))
            return true;
    }
    return false;
}

std::vector<CcInstruction>
CcInstruction::splitAtPageBoundaries() const
{
    std::vector<CcInstruction> pieces;
    std::size_t done = 0;
    while (done < size) {
        // Next page boundary over any operand bounds this piece.
        std::size_t chunk = size - done;
        for (Addr a : operandAddrs()) {
            if ((op == CcOpcode::Search || src2Replicated) && a == src2)
                continue;  // the key / replicated block does not advance
            Addr cur = a + done;
            std::size_t to_boundary =
                static_cast<std::size_t>(alignDown(cur, kPageSize) +
                                         kPageSize - cur);
            chunk = std::min(chunk, to_boundary);
        }
        CcInstruction piece = *this;
        piece.src1 = src1 + done;
        if (op != CcOpcode::Search && !src2Replicated)
            piece.src2 = src2 ? src2 + done : 0;
        piece.dest = dest ? dest + done : 0;
        piece.size = chunk;
        pieces.push_back(piece);
        done += chunk;
    }
    return pieces;
}

std::string
CcInstruction::toString() const
{
    std::ostringstream os;
    os << cc::toString(op);
    if (op == CcOpcode::Clmul)
        os << clmulWordBits;
    os << std::hex;
    for (Addr a : operandAddrs())
        os << " 0x" << a;
    os << std::dec << " " << size;
    return os.str();
}

} // namespace ccache::cc
