/**
 * @file
 * Near-place Compute Cache logic unit (Section IV-J).
 *
 * When operand locality does not hold, the cache controller's logic unit
 * executes the operation "near" the cache: source operands are read from
 * the sub-arrays into controller registers (crossing the H-tree), the
 * logic unit computes, and the result is written back. This keeps the
 * benefit of not moving data up the hierarchy, but pays H-tree transfer
 * energy and provides only one vector logic unit of parallelism per
 * controller.
 */

#ifndef CCACHE_CC_NEAR_PLACE_UNIT_HH
#define CCACHE_CC_NEAR_PLACE_UNIT_HH

#include <cstdint>
#include <optional>

#include "cc/isa.hh"
#include "common/block.hh"
#include "common/stats.hh"
#include "energy/energy_model.hh"

namespace ccache::cc {

/** Outcome of a near-place block operation. */
struct NearPlaceResult
{
    Block result{};               ///< written back for RW ops
    std::uint64_t wordEqualMask = 0;  ///< cmp/search word-equality bits
    Cycles latency = 0;
};

/** Configuration of the logic unit. */
struct NearPlaceParams
{
    /** Latency of one near-place block op at each level. Section IV-J
     *  quotes 22 cycles (vs 14 in-place) for the large lower-level
     *  arrays; smaller upper-level arrays have shorter H-tree paths. @{ */
    Cycles opLatency = 22;      ///< L3
    Cycles opLatencyL2 = 17;
    Cycles opLatencyL1 = 12;
    /** @} */

    /** Latency at @p level. */
    Cycles
    latency(CacheLevel level) const
    {
        switch (level) {
          case CacheLevel::L1: return opLatencyL1;
          case CacheLevel::L2: return opLatencyL2;
          case CacheLevel::L3: return opLatency;
        }
        return opLatency;
    }

    /** Controller operand registers (one vector logic unit per cache
     *  controller in the paper's near-place design). */
    std::size_t operandRegisters = 2;
};

/** The logic unit itself: pure block-level compute plus cost model. */
class NearPlaceUnit
{
  public:
    NearPlaceUnit(const NearPlaceParams &params,
                  energy::EnergyModel *energy, StatRegistry *stats);

    const NearPlaceParams &params() const { return params_; }

    /**
     * Execute one block-wide op on operands already read into the
     * controller registers. Charges the sub-array reads (over the
     * H-tree), the logic-unit datapath and the result write-back at
     * @p level.
     */
    NearPlaceResult execute(CcOpcode op, CacheLevel level, const Block &a,
                            const Block &b,
                            std::size_t clmul_word_bits = 64);

    std::uint64_t opsExecuted() const { return ops_; }

  private:
    NearPlaceParams params_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
    /** Pre-registered "cc.near_place_ops" counter: execute() runs once
     *  per near-place block op, so it increments through a stable
     *  pointer instead of a name lookup. Null without a registry. */
    StatCounter *opsStat_ = nullptr;
    std::uint64_t ops_ = 0;
};

/**
 * Reference block-level semantics of every CC operation, shared by the
 * near-place unit and the in-place fast path (whose equivalence to the
 * bit-line circuit model is proven by tests).
 */
struct BlockCompute
{
    static Block apply(CcOpcode op, const Block &a, const Block &b,
                       std::size_t clmul_word_bits = 64);

    /** Word-granular equality mask (bit i: words i equal). */
    static std::uint64_t wordEqualMask(const Block &a, const Block &b);

    /** Carryless-multiply parities packed into a block: one result bit
     *  per clmul word, stored at the low bits. */
    static Block clmulPack(const Block &a, const Block &b,
                           std::size_t word_bits);
};

} // namespace ccache::cc

#endif // CCACHE_CC_NEAR_PLACE_UNIT_HH
