#include "cc/operation_table.hh"

#include "common/logging.hh"

namespace ccache::cc {

const char *
toString(OpStatus s)
{
    switch (s) {
      case OpStatus::WaitingOperands: return "waiting";
      case OpStatus::Ready: return "ready";
      case OpStatus::Issued: return "issued";
      case OpStatus::Done: return "done";
    }
    return "?";
}

OperationTable::OperationTable(std::size_t entries) : entries_(entries)
{
    CC_ASSERT(entries > 0, "operation table needs entries");
}

std::size_t
OperationTable::occupancy() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

std::optional<std::size_t>
OperationTable::allocate(InstrId instr, std::size_t op_index,
                         std::vector<Addr> operands)
{
    CC_ASSERT(!operands.empty() && operands.size() <= 32,
              "bad operand count ", operands.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].valid)
            continue;
        OpEntry &e = entries_[i];
        e = OpEntry{};
        e.valid = true;
        e.instr = instr;
        e.opIndex = op_index;
        e.operands = std::move(operands);
        return i;
    }
    return std::nullopt;
}

OpEntry &
OperationTable::entry(std::size_t id)
{
    CC_ASSERT(id < entries_.size() && entries_[id].valid,
              "bad operation-table id ", id);
    return entries_[id];
}

void
OperationTable::markFetched(std::size_t id, std::size_t idx)
{
    OpEntry &e = entry(id);
    CC_ASSERT(idx < e.operands.size(), "operand index out of range");
    e.fetched |= 1u << idx;
    if (e.allFetched() && e.status == OpStatus::WaitingOperands)
        e.status = OpStatus::Ready;
}

void
OperationTable::markLost(std::size_t id, std::size_t idx)
{
    OpEntry &e = entry(id);
    CC_ASSERT(idx < e.operands.size(), "operand index out of range");
    CC_ASSERT(e.status != OpStatus::Done, "lost operand after completion");
    e.fetched &= ~(1u << idx);
    e.status = OpStatus::WaitingOperands;
}

void
OperationTable::markIssued(std::size_t id)
{
    OpEntry &e = entry(id);
    CC_ASSERT(e.status == OpStatus::Ready, "issue of non-ready op ", id,
              " in state ", toString(e.status));
    e.status = OpStatus::Issued;
}

void
OperationTable::markDone(std::size_t id)
{
    OpEntry &e = entry(id);
    CC_ASSERT(e.status == OpStatus::Issued, "completion of non-issued op");
    e.status = OpStatus::Done;
}

void
OperationTable::release(std::size_t id)
{
    entry(id).valid = false;
}

} // namespace ccache::cc
