/**
 * @file
 * Reference semantics and cycle model of the bit-serial arithmetic class
 * (Neural Cache, arXiv 1805.03718).
 *
 * Operands live in the transposed bit-slice layout: an N-lane, W-bit
 * vector is W consecutive slice rows of slice_bytes = N/8 bytes each, and
 * bit l of slice k holds bit k of lane l (little-endian within the slice:
 * byte l/8, bit l%8). BitSerialCompute applies the same word-at-a-time
 * carry/borrow recurrences the SubArray carry latch implements, so the
 * differential tests can hold controller, circuit and near-place paths to
 * one definition.
 */

#ifndef CCACHE_CC_BITSERIAL_HH
#define CCACHE_CC_BITSERIAL_HH

#include <cstddef>
#include <cstdint>

#include "cc/isa.hh"

namespace ccache::cc {

/** Pure slice-buffer semantics of the bit-serial ops. All buffers hold
 *  whole slices of @p slice_bytes bytes (a multiple of 8); source and
 *  destination stacks must be byte-identical ranges or disjoint. */
struct BitSerialCompute
{
    /** dst = a + b (mod 2^width), lane-wise. dst may alias a source. */
    static void add(std::uint8_t *dst, const std::uint8_t *a,
                    const std::uint8_t *b, std::size_t slice_bytes,
                    std::size_t width);

    /** dst = a - b (mod 2^width) via the borrow recurrence. */
    static void sub(std::uint8_t *dst, const std::uint8_t *a,
                    const std::uint8_t *b, std::size_t slice_bytes,
                    std::size_t width);

    /** dst = a * b (mod 2^width), shift-and-add. dst must be disjoint
     *  from both sources (it is the read-modify-written accumulator). */
    static void mul(std::uint8_t *dst, const std::uint8_t *a,
                    const std::uint8_t *b, std::size_t slice_bytes,
                    std::size_t width);

    /** One-slice lt/gt/eq predicate, MSB-first; @p op selects which of
     *  the three latches is written to @p dst. @p is_signed flips the
     *  lt/gt roles at the sign slice (ignored by Eq). */
    static void compare(CcOpcode op, std::uint8_t *dst,
                        const std::uint8_t *a, const std::uint8_t *b,
                        std::size_t slice_bytes, std::size_t width,
                        bool is_signed);

    /** Dispatch on @p instr.op over slice buffers (compare included). */
    static void apply(const CcInstruction &instr, std::uint8_t *dst,
                      const std::uint8_t *a, const std::uint8_t *b,
                      std::size_t slice_bytes);

    /**
     * Bit-line steps one lane group (one partition's worth of columns)
     * spends on @p op at lane width @p w — the analytical cycle model
     * the gemm bench gates measured throughput against:
     *  - add: w dual-row activations;
     *  - sub: w activations, each with an extra single-row sense (2w);
     *  - lt/gt/eq: w compare steps with the extra sense, plus the
     *    predicate write-back (2w + 1);
     *  - mul: w accumulator-zeroing steps plus w(w+1)/2 partial-product
     *    (read, add-step) pairs: w + w(w+1).
     */
    static std::size_t steps(CcOpcode op, std::size_t w);
};

} // namespace ccache::cc

#endif // CCACHE_CC_BITSERIAL_HH
