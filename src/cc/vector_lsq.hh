/**
 * @file
 * Memory disambiguation for CC vector instructions (Section IV-H).
 *
 * CC instructions access address *ranges*, so the core's load-store queue
 * is split: the scalar LSQ/store-buffer checks single addresses and
 * coalesces; the vector LSQ/store-buffer checks ranges (max 12
 * comparisons per entry) and never coalesces, because a CC-RW result is
 * unknown until the cache performs it. When a scalar and a vector store
 * target the same location, the younger store stalls behind the older via
 * a successor pointer + stall bit.
 */

#ifndef CCACHE_CC_VECTOR_LSQ_HH
#define CCACHE_CC_VECTOR_LSQ_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cc/isa.hh"
#include "common/types.hh"

namespace ccache::cc {

/** Half-open byte range [base, base+len). */
struct AddrRange
{
    Addr base = 0;
    std::size_t len = 0;

    Addr end() const { return base + len; }

    bool overlaps(const AddrRange &other) const
    {
        return base < other.end() && other.base < end();
    }

    bool contains(Addr a) const { return a >= base && a < end(); }
};

/** Ranges read and written by a CC instruction. */
struct VectorAccess
{
    std::vector<AddrRange> reads;
    std::vector<AddrRange> writes;

    static VectorAccess of(const CcInstruction &instr);

    /** Address-range comparator count (the paper caps this at 12). */
    std::size_t comparisons() const { return reads.size() + writes.size(); }
};

/** Entry identifiers. */
using LsqId = std::size_t;

/** Configuration per Table IV (48 LQ, 32 SQ) plus the vector additions. */
struct VectorLsqParams
{
    std::size_t scalarLoadEntries = 48;
    std::size_t scalarStoreEntries = 32;
    std::size_t vectorEntries = 16;
    std::size_t maxComparisonsPerEntry = 12;
};

/**
 * Combined model of the split LSQ / store-buffer structures. It tracks
 * in-flight scalar stores and vector instructions, answers ordering
 * queries, and models the stall-bit chaining between the two store
 * buffers.
 */
class VectorLsq
{
  public:
    explicit VectorLsq(const VectorLsqParams &params = VectorLsqParams{});

    const VectorLsqParams &params() const { return params_; }

    /** Insert a scalar store; nullopt when the store buffer is full.
     *  Coalesces with an existing in-flight store to the same word. */
    std::optional<LsqId> insertScalarStore(Addr addr);

    /** Insert a vector (CC) instruction; nullopt when the vector queue
     *  is full or the entry would need more than 12 comparators. */
    std::optional<LsqId> insertVector(const CcInstruction &instr);

    /**
     * True if a scalar load at @p addr may execute now: no older vector
     * store range covers it (no forwarding from vector stores).
     */
    bool scalarLoadMayExecute(Addr addr, std::size_t nbytes = 8) const;

    /**
     * True if the vector instruction @p id may execute now. CC-R entries
     * order only against overlapping older stores; CC-RW entries behave
     * like stores (RMO: no ordering against disjoint accesses).
     */
    bool vectorMayExecute(LsqId id) const;

    /** True if the entry was stalled behind a same-address store in the
     *  other buffer when inserted (stall bit set). */
    bool isStalled(LsqId id) const;

    /** Retire an entry; clears stall bits of its successors. */
    void retireScalarStore(LsqId id);
    void retireVector(LsqId id);

    /** Pending-counts for occupancy stats. @{ */
    std::size_t scalarStoresInFlight() const;
    std::size_t vectorsInFlight() const;
    /** @} */

    /** Number of stall events recorded (same-location cross-buffer). */
    std::uint64_t crossBufferStalls() const { return stalls_; }

    /** Fence semantics: everything in flight must drain first. */
    bool fenceMayCommit() const;

  private:
    struct ScalarEntry
    {
        bool valid = false;
        Addr addr = 0;
        std::uint64_t seq = 0;
        bool stalled = false;
        std::optional<LsqId> successorVector;
    };

    struct VectorEntry
    {
        bool valid = false;
        CcInstruction instr;
        VectorAccess access;
        bool isStore = false;
        std::uint64_t seq = 0;
        bool stalled = false;
        std::optional<LsqId> successorScalar;
    };

    VectorLsqParams params_;
    std::vector<ScalarEntry> scalar_;
    std::vector<VectorEntry> vector_;
    std::uint64_t seq_ = 0;
    std::uint64_t stalls_ = 0;
};

} // namespace ccache::cc

#endif // CCACHE_CC_VECTOR_LSQ_HH
