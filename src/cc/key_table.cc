#include "cc/key_table.hh"

namespace ccache::cc {

bool
KeyTable::needsReplication(std::uint64_t instr, Addr key_addr,
                           const PartitionId &where)
{
    auto &partitions = table_[Key{instr, key_addr}];
    auto [it, inserted] = partitions.insert(where);
    (void)it;
    if (inserted)
        ++replications_;
    return inserted;
}

void
KeyTable::releaseInstr(std::uint64_t instr)
{
    for (auto it = table_.begin(); it != table_.end();) {
        if (it->first.instr == instr)
            it = table_.erase(it);
        else
            ++it;
    }
}

} // namespace ccache::cc
