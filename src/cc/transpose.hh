/**
 * @file
 * Transposed (bit-slice) layout manager for the bit-serial arithmetic
 * class (Neural Cache, arXiv 1805.03718).
 *
 * Normal form: an N-lane, W-bit vector packed as a tight little-endian
 * bitstream -- lane l occupies bits [l*W, (l+1)*W). Transposed form:
 * W bit-slice rows of sliceBytes(N) bytes each, kSliceStride apart,
 * where bit l of slice k is bit k of lane l. The pure codecs are free
 * functions (shared with the tests); TransposeManager moves data through
 * the simulated hierarchy and charges the shuffle work, so apps account
 * for the transposition cost the paper's in-cache arithmetic amortizes.
 */

#ifndef CCACHE_CC_TRANSPOSE_HH
#define CCACHE_CC_TRANSPOSE_HH

#include <cstdint>
#include <vector>

#include "cc/isa.hh"
#include "common/stats.hh"

namespace ccache::cache {
class Hierarchy;
}
namespace ccache::energy {
class EnergyModel;
}

namespace ccache::cc {

/** Bytes per bit-slice row for @p lanes lanes: lanes/8 rounded up to
 *  whole 64-byte blocks (partial blocks are padded with zero lanes). */
inline std::size_t
sliceBytes(std::size_t lanes)
{
    return ((lanes + 8 * kBlockSize - 1) / (8 * kBlockSize)) * kBlockSize;
}

/**
 * Packed bitstream -> slice buffer. @p slices must hold
 * width * sliceBytes(lanes) bytes (slice k at offset k * sliceBytes);
 * pad lanes beyond @p lanes are zeroed. @p packed holds
 * ceil(lanes * width / 8) bytes.
 */
void transposeBits(const std::uint8_t *packed, std::uint8_t *slices,
                   std::size_t lanes, std::size_t width);

/** Slice buffer -> packed bitstream (exact inverse over real lanes). */
void untransposeBits(const std::uint8_t *slices, std::uint8_t *packed,
                     std::size_t lanes, std::size_t width);

/** Moves vectors between normal and transposed form through the cache
 *  hierarchy, charging the core-side shuffle instructions. */
class TransposeManager
{
  public:
    TransposeManager(cache::Hierarchy &hier, energy::EnergyModel *energy,
                     StatRegistry *stats);

    /**
     * Read the packed W-bit vector at @p src, write its W bit-slice
     * rows at @p dst (slice k at dst + k * kSliceStride). Returns the
     * core-observed latency of the data movement.
     */
    Cycles transpose(CoreId core, Addr src, Addr dst, std::size_t lanes,
                     std::size_t width);

    /** Inverse: gather the slice rows at @p src into the packed vector
     *  at @p dst. */
    Cycles untranspose(CoreId core, Addr src, Addr dst, std::size_t lanes,
                       std::size_t width);

    /**
     * Write the transposed form of @p value replicated into every lane:
     * slice k is all-ones (within the lane range) iff bit k of @p value
     * is set. No per-lane shuffle is needed, so this is the cheap way
     * to stage a scalar operand for a vector-scalar bit-serial op.
     */
    Cycles broadcast(CoreId core, std::uint64_t value, Addr dst,
                     std::size_t lanes, std::size_t width);

    std::uint64_t transposes() const { return transposes_; }
    std::uint64_t untransposes() const { return untransposes_; }
    std::uint64_t broadcasts() const { return broadcasts_; }

  private:
    /** Charge the word-granular shuffle work of one (un)transpose. */
    void chargeShuffle(std::size_t lanes, std::size_t width);

    cache::Hierarchy &hier_;
    energy::EnergyModel *energy_;
    StatCounter *transposesStat_ = nullptr;
    StatCounter *untransposesStat_ = nullptr;
    StatCounter *broadcastsStat_ = nullptr;
    std::uint64_t transposes_ = 0;
    std::uint64_t untransposes_ = 0;
    std::uint64_t broadcasts_ = 0;

    /** Reused staging buffers (no per-call allocation). */
    std::vector<std::uint8_t> packedBuf_;
    std::vector<std::uint8_t> sliceBuf_;
};

} // namespace ccache::cc

#endif // CCACHE_CC_TRANSPOSE_HH
