#include "cc/transpose.hh"

#include <cstring>

#include "cache/hierarchy.hh"
#include "common/bit_util.hh"
#include "common/logging.hh"
#include "energy/energy_model.hh"

namespace ccache::cc {

void
transposeBits(const std::uint8_t *packed, std::uint8_t *slices,
              std::size_t lanes, std::size_t width)
{
    std::size_t sb = sliceBytes(lanes);
    std::memset(slices, 0, sb * width);
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t k = 0; k < width; ++k) {
            std::size_t bit = l * width + k;
            if ((packed[bit / 8] >> (bit % 8)) & 1)
                slices[k * sb + l / 8] |=
                    static_cast<std::uint8_t>(1u << (l % 8));
        }
    }
}

void
untransposeBits(const std::uint8_t *slices, std::uint8_t *packed,
                std::size_t lanes, std::size_t width)
{
    std::size_t sb = sliceBytes(lanes);
    std::memset(packed, 0, divCeil(lanes * width, 8));
    for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t k = 0; k < width; ++k) {
            if ((slices[k * sb + l / 8] >> (l % 8)) & 1) {
                std::size_t bit = l * width + k;
                packed[bit / 8] |=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
        }
    }
}

TransposeManager::TransposeManager(cache::Hierarchy &hier,
                                   energy::EnergyModel *energy,
                                   StatRegistry *stats)
    : hier_(hier), energy_(energy)
{
    if (stats) {
        transposesStat_ = &stats->counter("cc.transposes");
        untransposesStat_ = &stats->counter("cc.untransposes");
        broadcastsStat_ = &stats->counter("cc.broadcasts");
    }
}

void
TransposeManager::chargeShuffle(std::size_t lanes, std::size_t width)
{
    // Software bit-matrix transpose: word-granular shift/mask network,
    // ~one ALU op per 64 transposed bits plus per-slice bookkeeping.
    if (energy_)
        energy_->chargeInstructions(divCeil(lanes * width, 64) + width);
}

Cycles
TransposeManager::transpose(CoreId core, Addr src, Addr dst,
                            std::size_t lanes, std::size_t width)
{
    CC_ASSERT(width >= 1 && width <= kMaxBitSerialWidth,
              "transpose width ", width, " outside 1..",
              kMaxBitSerialWidth);
    std::size_t sb = sliceBytes(lanes);
    CC_ASSERT(sb <= kSliceStride, "slice rows of ", lanes,
              " lanes exceed the slice stride");

    packedBuf_.assign(divCeil(lanes * width, 8), 0);
    sliceBuf_.assign(sb * width, 0);

    Cycles latency = hier_.loadBytes(core, src, packedBuf_.data(),
                                     packedBuf_.size());
    transposeBits(packedBuf_.data(), sliceBuf_.data(), lanes, width);
    for (std::size_t k = 0; k < width; ++k) {
        latency += hier_.storeBytes(core,
                                    CcInstruction::sliceAddr(dst, k),
                                    sliceBuf_.data() + k * sb, sb);
    }
    chargeShuffle(lanes, width);
    ++transposes_;
    if (transposesStat_)
        transposesStat_->inc();
    return latency;
}

Cycles
TransposeManager::untranspose(CoreId core, Addr src, Addr dst,
                              std::size_t lanes, std::size_t width)
{
    CC_ASSERT(width >= 1 && width <= kMaxBitSerialWidth,
              "untranspose width ", width, " outside 1..",
              kMaxBitSerialWidth);
    std::size_t sb = sliceBytes(lanes);

    packedBuf_.assign(divCeil(lanes * width, 8), 0);
    sliceBuf_.assign(sb * width, 0);

    Cycles latency = 0;
    for (std::size_t k = 0; k < width; ++k) {
        latency += hier_.loadBytes(core,
                                   CcInstruction::sliceAddr(src, k),
                                   sliceBuf_.data() + k * sb, sb);
    }
    untransposeBits(sliceBuf_.data(), packedBuf_.data(), lanes, width);
    latency += hier_.storeBytes(core, dst, packedBuf_.data(),
                                packedBuf_.size());
    chargeShuffle(lanes, width);
    ++untransposes_;
    if (untransposesStat_)
        untransposesStat_->inc();
    return latency;
}

Cycles
TransposeManager::broadcast(CoreId core, std::uint64_t value, Addr dst,
                            std::size_t lanes, std::size_t width)
{
    CC_ASSERT(width >= 1 && width <= kMaxBitSerialWidth,
              "broadcast width ", width, " outside 1..",
              kMaxBitSerialWidth);
    std::size_t sb = sliceBytes(lanes);

    sliceBuf_.assign(sb, 0);
    std::vector<std::uint8_t> &ones = sliceBuf_;
    for (std::size_t l = 0; l < lanes; ++l)
        ones[l / 8] |= static_cast<std::uint8_t>(1u << (l % 8));
    std::vector<std::uint8_t> zeros(sb, 0);

    Cycles latency = 0;
    for (std::size_t k = 0; k < width; ++k) {
        const std::uint8_t *row =
            ((value >> k) & 1) ? ones.data() : zeros.data();
        latency += hier_.storeBytes(core,
                                    CcInstruction::sliceAddr(dst, k),
                                    row, sb);
    }
    if (energy_)
        energy_->chargeInstructions(width + 2);
    ++broadcasts_;
    if (broadcastsStat_)
        broadcastsStat_->inc();
    return latency;
}

} // namespace ccache::cc
