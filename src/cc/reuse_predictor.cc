#include "cc/reuse_predictor.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cc {

ReusePredictor::ReusePredictor(std::size_t entries, unsigned threshold)
    : capacity_(entries), threshold_(threshold)
{
    CC_ASSERT(entries > 0, "predictor needs entries");
}

void
ReusePredictor::touch(Addr addr)
{
    Addr page = alignDown(addr, kPageSize);
    auto it = table_.find(page);
    if (it != table_.end()) {
        if (it->second.count < 255)
            ++it->second.count;
        lru_.erase(it->second.lruIt);
        lru_.push_front(page);
        it->second.lruIt = lru_.begin();
        return;
    }

    if (table_.size() == capacity_) {
        Addr victim = lru_.back();
        lru_.pop_back();
        table_.erase(victim);
    }
    lru_.push_front(page);
    table_.emplace(page, Entry{1, lru_.begin()});
}

bool
ReusePredictor::predictsReuse(Addr addr) const
{
    auto it = table_.find(alignDown(addr, kPageSize));
    return it != table_.end() && it->second.count >= threshold_;
}

CacheLevel
ReusePredictor::recommend(CacheLevel policy_level,
                          const std::vector<Addr> &operands) const
{
    if (policy_level != CacheLevel::L3)
        return policy_level;
    for (Addr a : operands) {
        if (!predictsReuse(a))
            return policy_level;
    }
    return CacheLevel::L2;
}

} // namespace ccache::cc
