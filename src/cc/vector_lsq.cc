#include "cc/vector_lsq.hh"

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cc {

VectorAccess
VectorAccess::of(const CcInstruction &instr)
{
    VectorAccess a;
    switch (instr.op) {
      case CcOpcode::Copy:
      case CcOpcode::Not:
        a.reads.push_back({instr.src1, instr.size});
        a.writes.push_back({instr.dest, instr.size});
        break;
      case CcOpcode::Buz:
        a.writes.push_back({instr.dest, instr.size});
        break;
      case CcOpcode::Cmp:
        a.reads.push_back({instr.src1, instr.size});
        a.reads.push_back({instr.src2, instr.size});
        break;
      case CcOpcode::Search:
        a.reads.push_back({instr.src1, instr.size});
        a.reads.push_back({instr.src2, kSearchKeyBytes});
        break;
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Clmul:
        a.reads.push_back({instr.src1, instr.size});
        a.reads.push_back({instr.src2, instr.size});
        a.writes.push_back({instr.dest, instr.size});
        break;
    }
    return a;
}

VectorLsq::VectorLsq(const VectorLsqParams &params)
    : params_(params), scalar_(params.scalarStoreEntries),
      vector_(params.vectorEntries)
{
}

std::optional<LsqId>
VectorLsq::insertScalarStore(Addr addr)
{
    // Coalescing: an in-flight, un-stalled store to the same word absorbs
    // the new one.
    Addr word = alignDown(addr, 8);
    for (std::size_t i = 0; i < scalar_.size(); ++i) {
        if (scalar_[i].valid && !scalar_[i].stalled &&
            alignDown(scalar_[i].addr, 8) == word) {
            return i;
        }
    }

    for (std::size_t i = 0; i < scalar_.size(); ++i) {
        if (scalar_[i].valid)
            continue;
        ScalarEntry &e = scalar_[i];
        e = ScalarEntry{};
        e.valid = true;
        e.addr = addr;
        e.seq = ++seq_;

        // Same location already pending in the vector store buffer?
        // Stall this store behind it (program order between stores to the
        // same location, Section IV-H).
        for (std::size_t v = 0; v < vector_.size(); ++v) {
            if (!vector_[v].valid || !vector_[v].isStore)
                continue;
            for (const auto &w : vector_[v].access.writes) {
                if (w.contains(addr)) {
                    e.stalled = true;
                    vector_[v].successorScalar = i;
                    ++stalls_;
                }
            }
        }
        return i;
    }
    return std::nullopt;
}

std::optional<LsqId>
VectorLsq::insertVector(const CcInstruction &instr)
{
    VectorAccess access = VectorAccess::of(instr);
    if (access.comparisons() > params_.maxComparisonsPerEntry)
        return std::nullopt;

    for (std::size_t i = 0; i < vector_.size(); ++i) {
        if (vector_[i].valid)
            continue;
        VectorEntry &e = vector_[i];
        e = VectorEntry{};
        e.valid = true;
        e.instr = instr;
        e.access = access;
        e.isStore = !isCcR(instr.op);
        e.seq = ++seq_;

        if (e.isStore) {
            // Stall behind any pending scalar store to the same location.
            for (std::size_t s = 0; s < scalar_.size(); ++s) {
                if (!scalar_[s].valid)
                    continue;
                for (const auto &w : e.access.writes) {
                    if (w.contains(scalar_[s].addr)) {
                        e.stalled = true;
                        scalar_[s].successorVector = i;
                        ++stalls_;
                    }
                }
            }
        }
        return i;
    }
    return std::nullopt;
}

bool
VectorLsq::scalarLoadMayExecute(Addr addr, std::size_t nbytes) const
{
    // No forwarding from vector stores: a load overlapping a pending
    // vector store must wait (Section IV-H).
    AddrRange load{addr, nbytes};
    for (const auto &v : vector_) {
        if (!v.valid || !v.isStore)
            continue;
        for (const auto &w : v.access.writes) {
            if (w.overlaps(load))
                return false;
        }
    }
    return true;
}

bool
VectorLsq::vectorMayExecute(LsqId id) const
{
    CC_ASSERT(id < vector_.size() && vector_[id].valid, "bad vector id");
    const VectorEntry &e = vector_[id];
    if (e.stalled)
        return false;

    // Under RMO, CC-R may bypass older disjoint stores; it must wait for
    // any older overlapping store (scalar or vector).
    for (const auto &s : scalar_) {
        if (!s.valid || s.seq > e.seq)
            continue;
        for (const auto &r : e.access.reads) {
            if (r.contains(s.addr))
                return false;
        }
        for (const auto &w : e.access.writes) {
            if (w.contains(s.addr))
                return false;
        }
    }
    for (std::size_t v = 0; v < vector_.size(); ++v) {
        if (v == id || !vector_[v].valid || vector_[v].seq > e.seq ||
            !vector_[v].isStore) {
            continue;
        }
        for (const auto &w : vector_[v].access.writes) {
            for (const auto &r : e.access.reads) {
                if (w.overlaps(r))
                    return false;
            }
            for (const auto &mine : e.access.writes) {
                if (w.overlaps(mine))
                    return false;
            }
        }
    }
    return true;
}

bool
VectorLsq::isStalled(LsqId id) const
{
    CC_ASSERT(id < vector_.size() || id < scalar_.size(), "bad id");
    if (id < vector_.size() && vector_[id].valid && vector_[id].stalled)
        return true;
    if (id < scalar_.size() && scalar_[id].valid && scalar_[id].stalled)
        return true;
    return false;
}

void
VectorLsq::retireScalarStore(LsqId id)
{
    CC_ASSERT(id < scalar_.size() && scalar_[id].valid, "bad scalar id");
    // The stall bit of the successor is reset when the predecessor store
    // completes.
    if (auto succ = scalar_[id].successorVector) {
        if (vector_[*succ].valid)
            vector_[*succ].stalled = false;
    }
    scalar_[id].valid = false;
}

void
VectorLsq::retireVector(LsqId id)
{
    CC_ASSERT(id < vector_.size() && vector_[id].valid, "bad vector id");
    if (auto succ = vector_[id].successorScalar) {
        if (scalar_[*succ].valid)
            scalar_[*succ].stalled = false;
    }
    vector_[id].valid = false;
}

std::size_t
VectorLsq::scalarStoresInFlight() const
{
    std::size_t n = 0;
    for (const auto &e : scalar_)
        n += e.valid ? 1 : 0;
    return n;
}

std::size_t
VectorLsq::vectorsInFlight() const
{
    std::size_t n = 0;
    for (const auto &e : vector_)
        n += e.valid ? 1 : 0;
    return n;
}

bool
VectorLsq::fenceMayCommit() const
{
    // A fence commits only once every preceding operation, including CC
    // instructions, has completed (Section IV-G).
    return scalarStoresInFlight() == 0 && vectorsInFlight() == 0;
}

} // namespace ccache::cc
