#include "cc/bitserial.hh"

#include <cstring>

#include "common/logging.hh"

namespace ccache::cc {

namespace {

std::uint64_t
loadWord(const std::uint8_t *p)
{
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    return w;
}

void
storeWord(std::uint8_t *p, std::uint64_t w)
{
    std::memcpy(p, &w, 8);
}

} // namespace

void
BitSerialCompute::add(std::uint8_t *dst, const std::uint8_t *a,
                      const std::uint8_t *b, std::size_t slice_bytes,
                      std::size_t width)
{
    CC_ASSERT(slice_bytes % 8 == 0, "slice bytes must be word multiple");
    for (std::size_t off = 0; off < slice_bytes; off += 8) {
        std::uint64_t carry = 0;
        for (std::size_t k = 0; k < width; ++k) {
            std::uint64_t ak = loadWord(a + k * slice_bytes + off);
            std::uint64_t bk = loadWord(b + k * slice_bytes + off);
            std::uint64_t x = ak ^ bk;
            storeWord(dst + k * slice_bytes + off, x ^ carry);
            carry = (ak & bk) | (x & carry);
        }
    }
}

void
BitSerialCompute::sub(std::uint8_t *dst, const std::uint8_t *a,
                      const std::uint8_t *b, std::size_t slice_bytes,
                      std::size_t width)
{
    CC_ASSERT(slice_bytes % 8 == 0, "slice bytes must be word multiple");
    for (std::size_t off = 0; off < slice_bytes; off += 8) {
        std::uint64_t borrow = 0;
        for (std::size_t k = 0; k < width; ++k) {
            std::uint64_t ak = loadWord(a + k * slice_bytes + off);
            std::uint64_t bk = loadWord(b + k * slice_bytes + off);
            std::uint64_t x = ak ^ bk;
            storeWord(dst + k * slice_bytes + off, x ^ borrow);
            // ~a & b recovered as b & (a ^ b), matching the circuit's
            // extra single-row sense of b.
            borrow = (bk & x) | (~x & borrow);
        }
    }
}

void
BitSerialCompute::mul(std::uint8_t *dst, const std::uint8_t *a,
                      const std::uint8_t *b, std::size_t slice_bytes,
                      std::size_t width)
{
    CC_ASSERT(slice_bytes % 8 == 0, "slice bytes must be word multiple");
    CC_ASSERT(dst + slice_bytes * width <= a ||
                  a + slice_bytes * width <= dst,
              "mul accumulator overlaps source a");
    CC_ASSERT(dst + slice_bytes * width <= b ||
                  b + slice_bytes * width <= dst,
              "mul accumulator overlaps source b");
    std::memset(dst, 0, slice_bytes * width);
    for (std::size_t off = 0; off < slice_bytes; off += 8) {
        for (std::size_t j = 0; j < width; ++j) {
            std::uint64_t bj = loadWord(b + j * slice_bytes + off);
            std::uint64_t carry = 0;
            for (std::size_t k = 0; j + k < width; ++k) {
                std::uint64_t pp =
                    loadWord(a + k * slice_bytes + off) & bj;
                std::uint8_t *accp = dst + (j + k) * slice_bytes + off;
                std::uint64_t acc = loadWord(accp);
                std::uint64_t x = acc ^ pp;
                storeWord(accp, x ^ carry);
                carry = (acc & pp) | (x & carry);
            }
        }
    }
}

void
BitSerialCompute::compare(CcOpcode op, std::uint8_t *dst,
                          const std::uint8_t *a, const std::uint8_t *b,
                          std::size_t slice_bytes, std::size_t width,
                          bool is_signed)
{
    CC_ASSERT(slice_bytes % 8 == 0, "slice bytes must be word multiple");
    CC_ASSERT(isBitSerialCompare(op), "compare called with ",
              cc::toString(op));
    for (std::size_t off = 0; off < slice_bytes; off += 8) {
        std::uint64_t decided = 0, lt = 0, gt = 0;
        for (std::size_t k = width; k-- > 0;) {
            std::uint64_t ak = loadWord(a + k * slice_bytes + off);
            std::uint64_t bk = loadWord(b + k * slice_bytes + off);
            std::uint64_t fresh = ~decided & (ak ^ bk);
            // At the sign slice a set bit means the smaller value.
            bool sign_slice = is_signed && k + 1 == width;
            lt |= fresh & (sign_slice ? ak : bk);
            gt |= fresh & (sign_slice ? bk : ak);
            decided |= fresh;
        }
        std::uint64_t out = op == CcOpcode::Lt   ? lt
                            : op == CcOpcode::Gt ? gt
                                                 : ~decided;
        storeWord(dst + off, out);
    }
}

void
BitSerialCompute::apply(const CcInstruction &instr, std::uint8_t *dst,
                        const std::uint8_t *a, const std::uint8_t *b,
                        std::size_t slice_bytes)
{
    switch (instr.op) {
      case CcOpcode::Add:
        add(dst, a, b, slice_bytes, instr.laneBits);
        return;
      case CcOpcode::Sub:
        sub(dst, a, b, slice_bytes, instr.laneBits);
        return;
      case CcOpcode::Mul:
        mul(dst, a, b, slice_bytes, instr.laneBits);
        return;
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        compare(instr.op, dst, a, b, slice_bytes, instr.laneBits,
                instr.isSigned);
        return;
      default:
        CC_PANIC("BitSerialCompute::apply on ", instr.toString());
    }
}

std::size_t
BitSerialCompute::steps(CcOpcode op, std::size_t w)
{
    switch (op) {
      case CcOpcode::Add:
        return w;
      case CcOpcode::Sub:
        return 2 * w;
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return 2 * w + 1;
      case CcOpcode::Mul:
        return w + w * (w + 1);
      default:
        CC_PANIC("steps() on non-bit-serial ", cc::toString(op));
    }
}

} // namespace ccache::cc
