#include "cc/cc_controller.hh"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "cc/bitserial.hh"
#include "common/bit_util.hh"
#include "common/logging.hh"
#include "common/perf_counters.hh"
#include "common/rng.hh"
#include "verify/coherence_checker.hh"
#include "verify/watchdog.hh"

namespace ccache::cc {

using cache::Cache;

Cycles &
CcController::PartitionClock::operator[](std::uint64_t key)
{
    if (slots.empty())
        slots.resize(256);
    else if (live * 4 >= slots.size() * 3)
        grow();
    std::size_t mask = slots.size() - 1;
    std::size_t i = mix64(key) & mask;
    while (true) {
        Slot &s = slots[i];
        if (s.epoch != epoch) {
            s.key = key;
            s.value = 0;
            s.epoch = epoch;
            ++live;
            return s.value;
        }
        if (s.key == key)
            return s.value;
        i = (i + 1) & mask;
    }
}

void
CcController::PartitionClock::clear()
{
    ++epoch;
    live = 0;
    if (epoch == 0) {
        // Epoch counter wrapped: stale slots could alias the new epoch,
        // so pay one full sweep every 2^32 clears.
        for (Slot &s : slots)
            s.epoch = 0;
        epoch = 1;
    }
}

void
CcController::PartitionClock::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    std::size_t mask = slots.size() - 1;
    for (const Slot &s : old) {
        if (s.epoch != epoch)
            continue;
        std::size_t i = mix64(s.key) & mask;
        while (slots[i].epoch == epoch)
            i = (i + 1) & mask;
        slots[i] = s;
    }
}

void
CcController::ScheduleState::reset(unsigned power_cap)
{
    streaming = false;
    issueClock = 0;
    horizon = 0;
    partitionFree.clear();
    nearFree.clear();
    powerSlots.clear();
    // An ascending-index run of equal keys is already a valid min-heap,
    // so no make_heap is needed after this fill.
    for (unsigned i = 0; i < power_cap; ++i)
        powerSlots.emplace_back(0, i);
    fetchLats.clear();
}

namespace {

/** Overlap a set of staging latencies MLP-deep: the longest miss
 *  dominates and the rest pipeline behind it. */
Cycles
foldFetchLatencies(std::vector<Cycles> &lats, unsigned mlp)
{
    if (lats.empty())
        return 0;
    std::sort(lats.begin(), lats.end(), std::greater<Cycles>());
    Cycles total = lats.front();
    Cycles rest = 0;
    for (std::size_t i = 1; i < lats.size(); ++i)
        rest += lats[i];
    return total + rest / std::max(1u, mlp);
}

/** True for CC opcodes whose in-place form activates two word-lines
 *  simultaneously (the reduced-margin sensing mode). */
bool
isDualRowOp(CcOpcode op)
{
    switch (op) {
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor:
      case CcOpcode::Cmp:
      case CcOpcode::Search:
      case CcOpcode::Clmul:
      // Every bit-serial step senses two rows at once (the a/b or
      // partial-product/accumulator slice pair).
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return true;
      case CcOpcode::Copy:
      case CcOpcode::Buz:
      case CcOpcode::Not:
        return false;
    }
    return false;
}

} // namespace

CcController::CcController(cache::Hierarchy &hier,
                           energy::EnergyModel *energy, StatRegistry *stats,
                           const CcControllerParams &params)
    : hier_(hier), energy_(energy), stats_(stats), params_(params),
      instrTable_(params.instrTableEntries),
      opTable_(params.opTableEntries),
      nearPlace_(params.nearPlace, energy, stats),
      faults_(params.faults)
{
    if (params_.verifyCircuit) {
        sram::SubArrayParams sp;
        // Three bit-serial slice stacks of up to kMaxBitSerialWidth rows
        // must fit alongside the single-block scratch rows.
        sp.rows = 128;
        sp.cols = 8 * kBlockSize;
        circuit_ = std::make_unique<sram::SubArray>(sp);
    }

    if (stats_) {
        instrLatencyHist_ = &stats_->histogram(
            "cc.instr_latency", 64.0, 64,
            "per-CC-instruction completion latency (cycles)");
        faultScrubCyclesAccum_ = &stats_->accum("cc.fault.scrub_cycles");
        instructionsStat_ = &stats_->counter("cc.instructions");
        pageSplitExceptionsStat_ =
            &stats_->counter("cc.page_split_exceptions");
        lockRetriesStat_ = &stats_->counter("cc.lock_retries");
        operandRefetchesStat_ = &stats_->counter("cc.operand_refetches");
        inPlaceOpsStat_ = &stats_->counter("cc.in_place_ops");
        nearPlaceOpsStat_ = &stats_->counter("cc.near_place_ops");
        blockOpsStat_ = &stats_->counter("cc.block_ops");
        circuitVerificationsStat_ =
            &stats_->counter("cc.circuit_verifications");
        riscFallbacksStat_ = &stats_->counter("cc.risc_fallbacks");
        reuseHoistsStat_ = &stats_->counter("cc.reuse_hoists");
        instrTableFullStat_ = &stats_->counter("cc.instr_table_full");
        stagingRacesStat_ = &stats_->counter("cc.staging_races");
        keyReplicationsStat_ = &stats_->counter("cc.key_replications");
        opTableOverflowsStat_ = &stats_->counter("cc.op_table_overflows");
        faultRiscRecoveriesStat_ =
            &stats_->counter("cc.fault.risc_recoveries");
        faultDegradedNearPlaceStat_ =
            &stats_->counter("cc.fault.degraded_near_place");
        faultRetriesStat_ = &stats_->counter("cc.fault.retries");
        faultMarginFailuresStat_ =
            &stats_->counter("cc.fault.margin_failures");
        faultEccUncorrectableStat_ =
            &stats_->counter("cc.fault.ecc_uncorrectable");
        faultEccCorrectedStat_ = &stats_->counter("cc.fault.ecc_corrected");
        faultSilentCorruptionsStat_ =
            &stats_->counter("cc.fault.silent_corruptions");
        faultScrubVisitsStat_ = &stats_->counter("cc.fault.scrub_visits");
        faultScrubRefillsStat_ = &stats_->counter("cc.fault.scrub_refills");
        faultScrubCorrectionsStat_ =
            &stats_->counter("cc.fault.scrub_corrections");
        for (CacheLevel lvl :
             {CacheLevel::L1, CacheLevel::L2, CacheLevel::L3})
            levelOpsStat_[static_cast<unsigned>(lvl)] = &stats_->counter(
                std::string("cc.level_") + ccache::toString(lvl));
    }
}

CcExecResult
CcController::execute(CoreId core, const CcInstruction &instr)
{
    if (watchdog_)
        watchdog_->beginInstruction(toString(instr.op));

    CcExecResult res = executeInstr(core, instr);

    if (checker_) {
        // The controller wrote the cache arrays directly, below the
        // hierarchy's transaction hooks: audit every operand block now
        // that the instruction (and any fault-ladder recovery) retired.
        for (Addr base : {instr.src1, instr.src2, instr.dest}) {
            if (!base)
                continue;
            std::size_t slices =
                isBitSerial(instr.op) ? instr.sliceCount(base) : 1;
            for (std::size_t k = 0; k < slices; ++k) {
                Addr slice = isBitSerial(instr.op)
                    ? CcInstruction::sliceAddr(base, k)
                    : base;
                Addr first = alignDown(slice, kBlockSize);
                Addr last =
                    alignDown(slice + instr.size - 1, kBlockSize);
                for (Addr blk = first; blk <= last; blk += kBlockSize)
                    checker_->onTransaction(blk);
            }
        }
    }

    if (stats_) {
        instrLatencyHist_->sample(static_cast<double>(res.latency));
    }
    if (trace_ && trace_->enabled()) {
        Json args = Json::object();
        args["size"] = static_cast<std::uint64_t>(instr.size);
        args["level"] = ccache::toString(res.level);
        args["block_ops"] = static_cast<std::uint64_t>(res.blockOps);
        args["in_place_ops"] = static_cast<std::uint64_t>(res.inPlaceOps);
        args["near_place_ops"] =
            static_cast<std::uint64_t>(res.nearPlaceOps);
        if (res.riscFallback)
            args["risc_fallback"] = true;
        trace_->complete(tracecat::kCc, toString(instr.op),
                         static_cast<int>(core),
                         trace_->now(static_cast<int>(core)), res.latency,
                         std::move(args));
    }
    return res;
}

CcExecResult
CcController::executeInstr(CoreId core, const CcInstruction &instr)
{
    instr.validate();

    if (stats_)
        instructionsStat_->inc();
    if (energy_)
        energy_->chargeVectorInstructions(1);

    if (faults_.enabled()) {
        // Between instructions: background upsets strike resident
        // blocks, and the scrubber walks a few of them.
        faults_.backgroundTick();
        scrubTick();
    }

    if (isBitSerial(instr.op))
        return executeBitSerial(core, instr);

    if (!instr.spansPage())
        return executeOnce(core, instr);

    // Section IV-D: page-spanning operands raise a pipeline exception and
    // the handler splits the instruction per page.
    if (stats_)
        pageSplitExceptionsStat_->inc();
    CcExecResult total;
    total.latency = params_.pageSplitPenalty;
    std::size_t result_bits = 0;
    for (const CcInstruction &piece : instr.splitAtPageBoundaries()) {
        CcExecResult r = executeOnce(core, piece);
        total.latency += r.latency;
        total.fetchLatency += r.fetchLatency;
        total.computeLatency += r.computeLatency;
        total.blockOps += r.blockOps;
        total.inPlaceOps += r.inPlaceOps;
        total.nearPlaceOps += r.nearPlaceOps;
        total.keyReplications += r.keyReplications;
        total.lockRetries += r.lockRetries;
        total.riscFallback |= r.riscFallback;
        total.faultRetries += r.faultRetries;
        total.faultDegradedOps += r.faultDegradedOps;
        total.faultRiscRecoveries += r.faultRiscRecoveries;
        total.level = r.level;
        ++total.pageSplits;
        if (isCcR(instr.op)) {
            std::size_t bits = piece.size / 8;
            total.result |= r.result << result_bits;
            result_bits += bits;
        }
    }
    return total;
}

std::vector<CcExecResult>
CcController::executeStream(CoreId core,
                            const std::vector<CcInstruction> &instrs,
                            Cycles *total_latency)
{
    sched_.reset(params_.maxActiveSubarrays);
    sched_.streaming = true;
    std::vector<CcExecResult> results;
    results.reserve(instrs.size());
    for (const CcInstruction &instr : instrs)
        results.push_back(execute(core, instr));
    sched_.streaming = false;

    if (total_latency) {
        Cycles fetch = foldFetchLatencies(sched_.fetchLats,
                                          params_.fetchMlp);
        // One completion notification covers the drained stream.
        *total_latency = sched_.horizon + fetch +
            hier_.ring().send(0, core % hier_.cores(),
                              noc::MsgClass::Control);
    }
    return results;
}

void
CcController::traceFault(const char *name, Addr addr, CacheLevel level)
{
    if (!trace_ || !trace_->enabled())
        return;
    Json args = Json::object();
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    args["addr"] = buf;
    args["level"] = ccache::toString(level);
    trace_->instant(tracecat::kFault, name, EventTrace::kGlobalTrack,
                    trace_->now(EventTrace::kGlobalTrack),
                    std::move(args));
}

std::optional<Cycles>
CcController::stageOperand(CoreId core, Addr addr, CacheLevel level,
                           bool exclusive, bool for_overwrite)
{
    Cycles latency = 0;
    for (unsigned attempt = 0; attempt <= params_.maxLockRetries;
         ++attempt) {
        latency += hier_.fetchToLevel(core, addr, level, exclusive,
                                      for_overwrite);
        Cache &cache = hier_.cacheAt(level, core, addr);
        if (cache.contains(addr)) {
            // Pin + promote to MRU so the operand survives until issue
            // (Section IV-E).
            cache.pin(addr);
            cache.promoteMRU(addr);
            faults_.noteResident(addr);
            return latency;
        }
        if (stats_)
            lockRetriesStat_->inc();
        if (watchdog_)
            watchdog_->noteRetry("lock", addr);
    }
    return std::nullopt;
}

CcController::BlockOpOutcome
CcController::performBlockOp(CoreId core, const CcInstruction &instr,
                             const BlockOp &op, CacheLevel level)
{
    BlockOpOutcome out;

    auto read_block = [&](Addr a) -> Block {
        Cache &c = hier_.cacheAt(level, core, a);
        if (const Block *p = c.peek(a))
            return *p;
        // A staged operand can be lost to an unexpected invalidation;
        // re-fetch it instead of aborting the simulation.
        if (stats_)
            operandRefetchesStat_->inc();
        Block blk{};
        out.extraLatency += hier_.read(core, a, &blk, level).latency;
        return blk;
    };

    auto write_block = [&](Addr a, const Block &data) {
        Cache &c = hier_.cacheAt(level, core, a);
        if (c.poke(a, data)) {
            c.markDirty(a);
            return;
        }
        if (stats_)
            operandRefetchesStat_->inc();
        out.extraLatency += hier_.write(core, a, &data, level).latency;
    };

    // Final rung of the degradation ladder: the operands' cells are
    // unusable (multi-bit defect or persistent margin loss) -- discard
    // the cached copies, refill clean data from memory into fresh
    // cells, and run this block's op on the scalar core.
    auto risc_recover = [&]() {
        out.riscRecovered = true;
        if (stats_)
            faultRiscRecoveriesStat_->inc();
        traceFault("fault.risc_recovery", op.src1, level);
        for (Addr addr : {op.src1, op.src2}) {
            if (!addr)
                continue;
            faults_.clearLatent(addr);
            faults_.remap(addr);
            if (energy_)
                energy_->chargeDram(1);
        }
        out.extraLatency += params_.faultRefillLatency;
        if (energy_)
            energy_->chargeInstructions(3 * kWordsPerBlock);
    };

    Block a{};
    Block b{};
    if (op.src1)
        a = read_block(op.src1);
    if (op.src2)
        b = read_block(op.src2);

    // Rung 2: re-sense through the near-place path (single rows at
    // full margin, so margin failures cannot recur), with one more ECC
    // check round; an error that still persists is a cell defect and
    // falls through to the final rung. Returns the effective operands.
    auto degrade_sense = [&]() -> std::pair<Block, Block> {
        out.degradedNearPlace = true;
        if (stats_)
            faultDegradedNearPlaceStat_->inc();
        traceFault("fault.degrade_near_place", op.src1, level);
        out.extraLatency += params_.nearPlace.latency(level);
        std::uint64_t sid = fault::subarrayId(level, op.cacheIndex,
                                              op.partition);
        Block sa = a;
        Block sb = b;
        bool ok = true;
        if (op.src1)
            ok = checkOperand(&sa, a, op.src1, sid, level, &out);
        if (ok && op.src2)
            ok = checkOperand(&sb, b, op.src2, sid, level, &out);
        if (ok)
            return {sa, sb};
        risc_recover();
        return {a, b};  // clean data after the refill
    };

    bool dual_row = isDualRowOp(instr.op);
    energy::CacheOp cost_op = energy::cacheOpFor(sram::BitlineOp::Read);
    switch (instr.op) {
      case CcOpcode::Copy: cost_op = energy::CacheOp::Copy; break;
      case CcOpcode::Buz: cost_op = energy::CacheOp::Buz; break;
      case CcOpcode::Cmp: cost_op = energy::CacheOp::Cmp; break;
      case CcOpcode::Search: cost_op = energy::CacheOp::Cmp; break;
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor: cost_op = energy::CacheOp::Logic; break;
      case CcOpcode::Not: cost_op = energy::CacheOp::Not; break;
      case CcOpcode::Clmul: cost_op = energy::CacheOp::Clmul; break;
      // Bit-serial instructions never reach the block-op path (they
      // dispatch to executeBitSerial), but the classification keeps
      // this switch exhaustive.
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq: cost_op = energy::CacheOp::Logic; break;
    }

    if (instr.src2Replicated) {
        // Replicated clmul: the XOR tree's parities stream into the
        // controller's result register and land packed in dest.
        if (energy_)
            energy_->chargeCacheOp(level, cost_op);
        if (stats_)
            (op.inPlace ? inPlaceOpsStat_ : nearPlaceOpsStat_)->inc();

        if (faults_.enabled() &&
            !senseOperands(op, level, dual_row && op.inPlace,
                           params_.inPlaceLatency(level), cost_op,
                           &a, &b, &out)) {
            auto [sa, sb] = degrade_sense();
            a = sa;
            b = sb;
        }

        std::size_t bits_per_op = instr.clmulBitsPerBlock();
        std::size_t ops_per_dest = (8 * kBlockSize) / bits_per_op;
        std::size_t bit_off = (op.index % ops_per_dest) * bits_per_op;

        Block parities = BlockCompute::clmulPack(a, b,
                                                 instr.clmulWordBits);
        std::uint64_t bits = blockWord(parities, 0);

        Cache &dst_cache = hier_.cacheAt(level, core, op.dest);
        const Block *cur = dst_cache.peek(op.dest);
        Block merged{};
        if (cur) {
            merged = *cur;
        } else {
            // The packed destination was evicted mid-instruction;
            // recover the partial parities instead of aborting.
            if (stats_)
                operandRefetchesStat_->inc();
            out.extraLatency +=
                hier_.read(core, op.dest, &merged, level).latency;
        }
        std::size_t word = bit_off / 64;
        std::size_t shift = bit_off % 64;
        std::uint64_t w = blockWord(merged, word);
        std::uint64_t mask = bits_per_op == 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << bits_per_op) - 1) << shift;
        w = (w & ~mask) | ((bits << shift) & mask);
        setBlockWord(merged, word, w);
        dst_cache.poke(op.dest, merged);
        dst_cache.markDirty(op.dest);

        // One result-register drain (a block write) per filled dest.
        if (energy_ && bit_off + bits_per_op == 8 * kBlockSize)
            energy_->chargeCacheOp(level, energy::CacheOp::Write);
        return out;
    }

    if (op.inPlace) {
        if (energy_)
            energy_->chargeCacheOp(level, cost_op);
        if (stats_)
            inPlaceOpsStat_->inc();

        if (faults_.enabled() &&
            !senseOperands(op, level, dual_row,
                           params_.inPlaceLatency(level), cost_op,
                           &a, &b, &out)) {
            // Rung 2: the near-place unit re-reads with single-row
            // activations at full margin and computes in its own logic.
            auto [sa, sb] = degrade_sense();
            if (out.riscRecovered) {
                // Final rung: compute on the (refilled) clean data.
                if (isCcR(instr.op)) {
                    out.mask = BlockCompute::wordEqualMask(sa, sb);
                } else {
                    write_block(op.dest,
                                BlockCompute::apply(instr.op, sa, sb,
                                                    instr.clmulWordBits));
                }
                return out;
            }
            NearPlaceResult res = nearPlace_.execute(
                instr.op, level, sa, sb, instr.clmulWordBits);
            if (isCcR(instr.op))
                out.mask = res.wordEqualMask;
            else
                write_block(op.dest, res.result);
            return out;
        }

        if (isCcR(instr.op)) {
            out.mask = BlockCompute::wordEqualMask(a, b);
        } else {
            Block result = BlockCompute::apply(instr.op, a, b,
                                               instr.clmulWordBits);
            write_block(op.dest, result);
            if (faults_.enabled()) {
                // Section IV-I: an in-place op bypasses the normal ECC
                // datapath, so the result's code is recomputed by the
                // check unit before it can be written back.
                out.extraLatency += params_.eccCheckLatency;
                if (energy_)
                    energy_->addCacheAccess(
                        level, energy_->params().eccCheckPerBlock);
            }
            if (params_.verifyCircuit)
                verifyAgainstCircuit(instr, a, b, result);
        }
    } else {
        // Near-place reads use single-row full-margin senses; only cell
        // defects and soft errors apply, and a persistent failure goes
        // straight to the final rung (there is no lower unit to try).
        if (faults_.enabled() &&
            !senseOperands(op, level, false,
                           params_.nearPlace.latency(level),
                           energy::CacheOp::Read, &a, &b, &out)) {
            risc_recover();
        }
        // Near-place: the unit charges reads/logic/writeback itself.
        NearPlaceResult res = nearPlace_.execute(
            instr.op, level, a, b, instr.clmulWordBits);
        if (isCcR(instr.op)) {
            out.mask = res.wordEqualMask;
        } else {
            write_block(op.dest, res.result);
        }
    }

    return out;
}

bool
CcController::senseOperands(const BlockOp &op, CacheLevel level,
                            bool dual_row, Cycles retry_latency,
                            energy::CacheOp retry_op, Block *a, Block *b,
                            BlockOpOutcome *out)
{
    const Block ta = *a;
    const Block tb = *b;
    std::uint64_t sid = fault::subarrayId(level, op.cacheIndex,
                                          op.partition);
    for (unsigned attempt = 0; attempt <= params_.maxFaultRetries;
         ++attempt) {
        if (attempt > 0) {
            // Rung 1: bounded retry -- re-activate and re-sense the
            // partition, paying another op's worth of delay and energy.
            out->extraLatency += retry_latency;
            ++out->retries;
            if (energy_)
                energy_->chargeCacheOp(level, retry_op);
            if (stats_)
                faultRetriesStat_->inc();
            if (watchdog_)
                watchdog_->noteRetry("sense", op.src1);
            traceFault("fault.retry", op.src1, level);
        }
        if (dual_row && faults_.drawMarginFailure(sid)) {
            // The margin detector flagged this dual-row activation:
            // nothing sensed in this attempt can be trusted.
            if (stats_)
                faultMarginFailuresStat_->inc();
            traceFault("fault.margin_failure", op.src1, level);
            continue;
        }
        Block sa = ta;
        Block sb = tb;
        bool ok = true;
        if (op.src1)
            ok = checkOperand(&sa, ta, op.src1, sid, level, out);
        if (ok && op.src2)
            ok = checkOperand(&sb, tb, op.src2, sid, level, out);
        if (!ok)
            continue;
        *a = sa;
        *b = sb;
        return true;
    }
    return false;
}

bool
CcController::checkOperand(Block *sensed, const Block &truth, Addr addr,
                           std::uint64_t subarray_id, CacheLevel level,
                           BlockOpOutcome *out)
{
    // The stored code always protects the true data: codes are copied
    // along with data on cc_copy and recomputed on every write-back
    // (Section IV-I), so a mismatch below is sensing damage, not a
    // stale code.
    BlockEcc stored = encodeBlock(truth);

    faults_.applyLatent(addr, *sensed);
    fault::FaultInjector::corrupt(*sensed,
                            faults_.stuckAtFault(subarray_id, addr));
    fault::FaultInjector::corrupt(*sensed, faults_.drawOperandFault(subarray_id));

    // Route the sensed block through the ECC check unit.
    out->extraLatency += params_.eccCheckLatency;
    if (energy_)
        energy_->addCacheAccess(level,
                                energy_->params().eccCheckPerBlock);

    EccStatus status = checkBlock(*sensed, stored);
    if (status == EccStatus::DetectedDoubleBit) {
        if (stats_)
            faultEccUncorrectableStat_->inc();
        traceFault("fault.ecc_uncorrectable", addr, level);
        return false;
    }
    if (status == EccStatus::CorrectedSingleBit && stats_)
        faultEccCorrectedStat_->inc();

    // A clean or corrected pass also scrubs any latent damage on the
    // line (access-triggered scrubbing).
    faults_.clearLatent(addr);

    if (*sensed != truth && stats_) {
        // The check unit saw nothing wrong (or miscorrected an odd-
        // count burst): the op consumes wrong bits with no error raised.
        faultSilentCorruptionsStat_->inc();
    }
    return true;
}

void
CcController::scrubTick()
{
    if (params_.scrubBlocksPerInstr == 0)
        return;
    std::size_t visited = 0;
    auto hits = faults_.scrubVisit(params_.scrubBlocksPerInstr, &visited);
    if (visited == 0)
        return;
    if (stats_) {
        faultScrubVisitsStat_->inc(visited);
        // Scrubbing steals idle cycles (Section IV-I alternative 2), so
        // its time is tracked in its own budget, not in any
        // instruction's latency.
        faultScrubCyclesAccum_->add(static_cast<double>(visited) *
                                    static_cast<double>(
                                        params_.scrubCheckLatency));
    }
    if (energy_)
        energy_->chargeCacheOp(CacheLevel::L3, energy::CacheOp::Read,
                               visited);
    for (const auto &hit : hits) {
        Block truth = hier_.debugRead(hit.addr);
        Block sensed = truth;
        fault::FaultInjector::corrupt(sensed, hit.event);
        BlockEcc stored = encodeBlock(truth);
        EccStatus status = checkBlock(sensed, stored);
        if (status == EccStatus::DetectedDoubleBit) {
            // Uncorrectable latent damage caught before any op consumed
            // it: discard the line and refill clean data into fresh
            // cells.
            faults_.clearLatent(hit.addr);
            faults_.remap(hit.addr);
            if (stats_)
                faultScrubRefillsStat_->inc();
            if (energy_)
                energy_->chargeDram(1);
            continue;
        }
        faults_.clearLatent(hit.addr);
        if (sensed != truth) {
            // An odd-count burst aliased through the scrubber's check:
            // it "corrected" the line into a still-wrong value.
            if (stats_)
                faultSilentCorruptionsStat_->inc();
        } else if (status == EccStatus::CorrectedSingleBit) {
            if (stats_)
                faultScrubCorrectionsStat_->inc();
            if (energy_)
                energy_->chargeCacheOp(CacheLevel::L3,
                                       energy::CacheOp::Write);
        }
    }
}

void
CcController::verifyAgainstCircuit(const CcInstruction &instr,
                                   const Block &a, const Block &b,
                                   const Block &result)
{
    sram::BlockLoc la{0, 0}, lb{0, 1}, ld{0, 2};
    circuit_->write(la, a);
    circuit_->write(lb, b);
    Block circuit_result{};
    switch (instr.op) {
      case CcOpcode::Copy:
        circuit_->opCopy(la, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Buz:
        circuit_->opBuz(ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Not:
        circuit_->opNot(la, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::And:
        circuit_->opAnd(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Or:
        circuit_->opOr(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Xor:
        circuit_->opXor(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Clmul: {
        auto clres = circuit_->opClmul(la, lb, instr.clmulWordBits);
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < clres.parities.size(); ++i)
            packed |= static_cast<std::uint64_t>(clres.parities[i]) << i;
        setBlockWord(circuit_result, 0, packed);
        break;
      }
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        return;  // mask ops verified separately at the sub-array tests
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        return;  // slice stacks go through verifyBitSerialCircuit
    }
    CC_ASSERT(circuit_result == result,
              "circuit/functional divergence for ", toString(instr.op));
    if (stats_)
        circuitVerificationsStat_->inc();
}

CcExecResult
CcController::riscFallback(CoreId core, const CcInstruction &instr)
{
    if (isBitSerial(instr.op))
        return riscBitSerial(core, instr);

    // Section IV-E: after repeated lock failures the core translates the
    // CC operation into RISC operations.
    CcExecResult res;
    res.riscFallback = true;
    res.level = CacheLevel::L1;
    if (stats_)
        riscFallbacksStat_->inc();

    std::size_t blocks = divCeil(instr.size, kBlockSize);
    for (std::size_t i = 0; i < blocks; ++i) {
        Addr off = i * kBlockSize;
        Block a{};
        Block b{};
        if (instr.src1)
            res.latency += hier_.read(core, instr.src1 + off, &a).latency;
        if (instr.src2 && instr.op != CcOpcode::Search)
            res.latency += hier_.read(core, instr.src2 + off, &b).latency;
        if (instr.op == CcOpcode::Search)
            res.latency += hier_.read(core, instr.src2, &b).latency;

        if (isCcR(instr.op)) {
            std::uint64_t mask = BlockCompute::wordEqualMask(a, b);
            res.result |= mask << (i * kWordsPerBlock);
        } else {
            Block out = BlockCompute::apply(instr.op, a, b,
                                            instr.clmulWordBits);
            res.latency +=
                hier_.write(core, instr.dest + off, &out).latency;
        }
        // Word-granular loads/stores/ALU ops on the scalar core.
        if (energy_)
            energy_->chargeInstructions(3 * kWordsPerBlock);
        res.latency += kWordsPerBlock;  // ALU ops overlap the misses
    }
    res.blockOps = blocks;
    return res;
}

CcExecResult
CcController::riscBitSerial(CoreId core, const CcInstruction &instr)
{
    CcExecResult res;
    res.riscFallback = true;
    res.level = CacheLevel::L1;
    if (stats_)
        riscFallbacksStat_->inc();

    const std::size_t width = instr.laneBits;
    const std::size_t groups = instr.size / kBlockSize;
    const std::size_t dst_slices = instr.sliceCount(instr.dest);
    const std::size_t steps = BitSerialCompute::steps(instr.op, width);

    std::vector<Block> &a = scratchSliceA_;
    std::vector<Block> &b = scratchSliceB_;
    std::vector<Block> &d = scratchSliceD_;
    for (std::size_t g = 0; g < groups; ++g) {
        Addr off = g * kBlockSize;
        a.assign(width, Block{});
        b.assign(width, Block{});
        d.assign(dst_slices, Block{});
        for (std::size_t k = 0; k < width; ++k) {
            res.latency += hier_.read(
                core, CcInstruction::sliceAddr(instr.src1, k) + off,
                &a[k]).latency;
            res.latency += hier_.read(
                core, CcInstruction::sliceAddr(instr.src2, k) + off,
                &b[k]).latency;
        }
        // One 64-byte block per slice: the group's slice stride is
        // kBlockSize in the scratch buffers (vector<Block> is
        // contiguous).
        BitSerialCompute::apply(instr, d[0].data(), a[0].data(),
                                b[0].data(), kBlockSize);
        for (std::size_t k = 0; k < dst_slices; ++k) {
            res.latency += hier_.write(
                core, CcInstruction::sliceAddr(instr.dest, k) + off,
                &d[k]).latency;
        }
        // Word-granular loads/stores plus the shift/mask ALU work of
        // the software bit-serial recurrences on the scalar core.
        if (energy_)
            energy_->chargeInstructions(
                (2 * width + dst_slices + steps) * kWordsPerBlock);
        res.latency += steps;  // ALU recurrences overlap the misses
    }
    res.blockOps = groups * (2 * width + dst_slices);
    return res;
}

void
CcController::verifyBitSerialCircuit(const CcInstruction &instr,
                                     const std::vector<Block> &a,
                                     const std::vector<Block> &b,
                                     const std::vector<Block> &dst)
{
    const std::size_t width = instr.laneBits;
    // Disjoint row stacks inside the scratch sub-array; row capacity is
    // checked at construction (rows = 128 >= 3 * kMaxBitSerialWidth).
    sram::BitSerialOperand oa{0, 0};
    sram::BitSerialOperand ob{0, kMaxBitSerialWidth};
    sram::BitSerialOperand od{0, 2 * kMaxBitSerialWidth};
    for (std::size_t k = 0; k < width; ++k) {
        circuit_->write({0, oa.row0 + k}, a[k]);
        circuit_->write({0, ob.row0 + k}, b[k]);
    }
    if (isBitSerialCompare(instr.op)) {
        sram::BitSerialCmpResult cres = circuit_->opBitSerialCompare(
            oa, ob, width, instr.isSigned);
        const BitVector &want = instr.op == CcOpcode::Lt ? cres.lt
            : instr.op == CcOpcode::Gt                   ? cres.gt
                                                         : cres.eq;
        CC_ASSERT(bitsToBlock(want) == dst[0],
                  "circuit/functional divergence for ",
                  toString(instr.op));
    } else {
        switch (instr.op) {
          case CcOpcode::Add:
            circuit_->opBitSerialAdd(oa, ob, od, width);
            break;
          case CcOpcode::Sub:
            circuit_->opBitSerialSub(oa, ob, od, width);
            break;
          case CcOpcode::Mul:
            circuit_->opBitSerialMul(oa, ob, od, width);
            break;
          default:
            CC_PANIC("not a bit-serial arithmetic op");
        }
        for (std::size_t k = 0; k < width; ++k) {
            CC_ASSERT(circuit_->read({0, od.row0 + k}) == dst[k],
                      "circuit/functional divergence for ",
                      toString(instr.op), " slice ", k);
        }
    }
    if (stats_)
        circuitVerificationsStat_->inc();
}

CcExecResult
CcController::executeBitSerial(CoreId core, const CcInstruction &instr)
{
    CcExecResult res;
    if (!sched_.streaming)
        sched_.reset(params_.maxActiveSubarrays);
    else
        sched_.issueClock += params_.issueLatency;  // dispatch serializes
    res.latency = params_.issueLatency;

    const std::size_t width = instr.laneBits;
    const std::size_t groups = instr.size / kBlockSize;
    const std::size_t dst_slices = instr.sliceCount(instr.dest);
    const std::size_t steps = BitSerialCompute::steps(instr.op, width);
    res.blockOps = groups * steps;
    perf::addCcBlockOps(res.blockOps);

    // ------------------------------------------------------------------
    // Level selection over every slice block of every operand.
    // ------------------------------------------------------------------
    std::vector<Addr> &all_blocks = scratchBlocks_;
    all_blocks.clear();
    for (std::size_t g = 0; g < groups; ++g) {
        Addr off = g * kBlockSize;
        for (std::size_t k = 0; k < width; ++k) {
            all_blocks.push_back(
                CcInstruction::sliceAddr(instr.src1, k) + off);
            all_blocks.push_back(
                CcInstruction::sliceAddr(instr.src2, k) + off);
        }
        for (std::size_t k = 0; k < dst_slices; ++k)
            all_blocks.push_back(
                CcInstruction::sliceAddr(instr.dest, k) + off);
    }
    CacheLevel level = params_.forceLevel
        ? *params_.forceLevel
        : hier_.chooseLevel(core, all_blocks);
    if (params_.useReusePredictor && !params_.forceLevel) {
        level = reuse_.recommend(level, all_blocks);
        if (level != CacheLevel::L3 && stats_)
            reuseHoistsStat_->inc();
    }
    if (params_.useReusePredictor) {
        for (Addr addr : all_blocks)
            reuse_.touch(addr);
    }
    res.level = level;

    auto instr_id = instrTable_.allocate(instr, core, groups);
    if (!instr_id) {
        if (stats_)
            instrTableFullStat_->inc();
        return riscBitSerial(core, instr);
    }

    // ------------------------------------------------------------------
    // Stage + pin every slice block. Sources first, so an aliased
    // add/sub destination stack is fetched before the for-overwrite
    // staging of dest sees it resident.
    // ------------------------------------------------------------------
    std::vector<Addr> &pinned = scratchPinned_;
    std::vector<Cycles> &fetch_lats = scratchFetchLats_;
    pinned.clear();
    fetch_lats.clear();
    bool fallback = false;

    auto stage = [&](Addr addr, bool exclusive, bool overwrite) {
        auto lat = stageOperand(core, addr, level, exclusive, overwrite);
        if (!lat) {
            fallback = true;
            return;
        }
        if (*lat > 0)
            fetch_lats.push_back(*lat);
        pinned.push_back(addr);
    };

    for (std::size_t g = 0; g < groups && !fallback; ++g) {
        Addr off = g * kBlockSize;
        for (std::size_t k = 0; k < width && !fallback; ++k) {
            stage(CcInstruction::sliceAddr(instr.src1, k) + off, false,
                  false);
            if (!fallback)
                stage(CcInstruction::sliceAddr(instr.src2, k) + off,
                      false, false);
        }
        for (std::size_t k = 0; k < dst_slices && !fallback; ++k)
            stage(CcInstruction::sliceAddr(instr.dest, k) + off, true,
                  true);
    }

    auto unpin_all = [&]() {
        for (Addr addr : pinned)
            hier_.cacheAt(level, core, addr).unpin(addr);
    };

    if (fallback) {
        unpin_all();
        instrTable_.release(*instr_id);
        return riscBitSerial(core, instr);
    }

    if (!fetch_lats.empty()) {
        if (sched_.streaming) {
            sched_.fetchLats.insert(sched_.fetchLats.end(),
                                    fetch_lats.begin(), fetch_lats.end());
        } else {
            Cycles fetch = foldFetchLatencies(fetch_lats,
                                              params_.fetchMlp);
            res.fetchLatency = fetch;
            res.latency += fetch;
        }
    }

    // ------------------------------------------------------------------
    // One block op per lane group: locality holds when every slice of
    // every operand sits in the same cache instance and partition (the
    // page-stride layout guarantees it once the blocks are resident).
    // ------------------------------------------------------------------
    std::vector<BlockOp> &ops = scratchOps_;
    ops.assign(groups, BlockOp{});
    for (std::size_t g = 0; g < groups; ++g) {
        BlockOp &op = ops[g];
        op.index = g;
        Addr off = g * kBlockSize;
        op.src1 = instr.src1 + off;  // slice-0 anchor
        op.src2 = instr.src2 + off;
        op.dest = instr.dest + off;

        cache::Cache &anchor_cache = hier_.cacheAt(level, core, op.src1);
        auto place = anchor_cache.placeOf(op.src1);
        if (!place) {
            if (stats_)
                stagingRacesStat_->inc();
            unpin_all();
            instrTable_.release(*instr_id);
            return riscBitSerial(core, instr);
        }
        op.cacheIndex = level == CacheLevel::L3
            ? hier_.sliceFor(core, op.src1)
            : core;
        op.partition = place->globalPartition;

        op.inPlace = !params_.forceNearPlace;
        auto check_member = [&](Addr m) {
            unsigned idx = level == CacheLevel::L3
                ? hier_.sliceFor(core, m)
                : core;
            cache::Cache &c = hier_.cacheAt(level, core, m);
            auto p = c.placeOf(m);
            if (!p) {
                if (stats_)
                    stagingRacesStat_->inc();
                op.inPlace = false;
                return;
            }
            if (idx != op.cacheIndex ||
                p->globalPartition != op.partition)
                op.inPlace = false;
        };
        for (std::size_t k = 0; k < width; ++k) {
            check_member(CcInstruction::sliceAddr(instr.src1, k) + off);
            check_member(CcInstruction::sliceAddr(instr.src2, k) + off);
        }
        for (std::size_t k = 0; k < dst_slices; ++k)
            check_member(CcInstruction::sliceAddr(instr.dest, k) + off);
    }

    // ------------------------------------------------------------------
    // Execute + schedule each lane group: the whole carry-latch
    // sequence occupies its partition; near-place groups serialize on
    // the controller's single word-serial logic unit.
    // ------------------------------------------------------------------
    Cycles finish = sched_.horizon;
    auto &issue_clock = sched_.issueClock;
    auto &partition_free = sched_.partitionFree;
    auto &near_free = sched_.nearFree;
    auto &power_slots = sched_.powerSlots;

    const Cycles step_latency = params_.inPlaceLatency(level);

    for (BlockOp &op : ops) {
        issue_clock += 1;  // command delivery on the shared bus
        Cycles start = issue_clock / params_.commandIssuePerCycle;
        Cycles end;
        BlockOpOutcome outcome;
        Addr off = op.index * kBlockSize;

        auto read_block = [&](Addr addr) -> Block {
            cache::Cache &c = hier_.cacheAt(level, core, addr);
            if (const Block *p = c.peek(addr))
                return *p;
            if (stats_)
                operandRefetchesStat_->inc();
            Block blk{};
            outcome.extraLatency +=
                hier_.read(core, addr, &blk, level).latency;
            return blk;
        };
        auto write_block = [&](Addr addr, const Block &data) {
            cache::Cache &c = hier_.cacheAt(level, core, addr);
            if (c.poke(addr, data)) {
                c.markDirty(addr);
                return;
            }
            if (stats_)
                operandRefetchesStat_->inc();
            outcome.extraLatency +=
                hier_.write(core, addr, &data, level).latency;
        };

        std::vector<Block> &a = scratchSliceA_;
        std::vector<Block> &b = scratchSliceB_;
        std::vector<Block> &d = scratchSliceD_;
        a.assign(width, Block{});
        b.assign(width, Block{});
        d.assign(dst_slices, Block{});
        for (std::size_t k = 0; k < width; ++k) {
            a[k] = read_block(CcInstruction::sliceAddr(instr.src1, k) +
                              off);
            b[k] = read_block(CcInstruction::sliceAddr(instr.src2, k) +
                              off);
        }

        // Fault ladder, slice-pair by slice-pair: a pair that exhausts
        // its retries degrades the WHOLE group to the near-place unit
        // (the carry latch cannot resume mid-sequence), and a pair that
        // still fails there refills clean data and recovers on the
        // scalar core's recurrences.
        bool group_recovered = false;
        if (faults_.enabled()) {
            bool group_degraded = false;
            for (std::size_t k = 0; k < width && !group_degraded; ++k) {
                BlockOp sop = op;
                sop.src1 =
                    CcInstruction::sliceAddr(instr.src1, k) + off;
                sop.src2 =
                    CcInstruction::sliceAddr(instr.src2, k) + off;
                if (!senseOperands(sop, level, op.inPlace, step_latency,
                                   energy::CacheOp::Logic, &a[k], &b[k],
                                   &outcome))
                    group_degraded = true;
            }
            if (group_degraded) {
                outcome.degradedNearPlace = true;
                if (stats_)
                    faultDegradedNearPlaceStat_->inc();
                traceFault("fault.degrade_near_place", op.src1, level);
                outcome.extraLatency += params_.nearPlace.latency(level);
                op.inPlace = false;
                std::uint64_t sid = fault::subarrayId(
                    level, op.cacheIndex, op.partition);
                bool ok = true;
                for (std::size_t k = 0; k < width && ok; ++k) {
                    Addr sa =
                        CcInstruction::sliceAddr(instr.src1, k) + off;
                    Addr sb =
                        CcInstruction::sliceAddr(instr.src2, k) + off;
                    Block ta = read_block(sa);
                    Block tb = read_block(sb);
                    a[k] = ta;
                    b[k] = tb;
                    ok = checkOperand(&a[k], ta, sa, sid, level,
                                      &outcome) &&
                        checkOperand(&b[k], tb, sb, sid, level,
                                     &outcome);
                }
                if (!ok) {
                    group_recovered = true;
                    outcome.riscRecovered = true;
                    if (stats_)
                        faultRiscRecoveriesStat_->inc();
                    traceFault("fault.risc_recovery", op.src1, level);
                    for (std::size_t k = 0; k < width; ++k) {
                        for (Addr addr :
                             {CcInstruction::sliceAddr(instr.src1, k) +
                                  off,
                              CcInstruction::sliceAddr(instr.src2, k) +
                                  off}) {
                            faults_.clearLatent(addr);
                            faults_.remap(addr);
                        }
                        a[k] = read_block(
                            CcInstruction::sliceAddr(instr.src1, k) +
                            off);
                        b[k] = read_block(
                            CcInstruction::sliceAddr(instr.src2, k) +
                            off);
                    }
                    outcome.extraLatency += params_.faultRefillLatency;
                    if (energy_) {
                        energy_->chargeDram(2 * width);
                        energy_->chargeInstructions(
                            (2 * width + dst_slices + steps) *
                            kWordsPerBlock);
                    }
                }
            }
        }

        // Functional result from the sensed slices: one block per
        // slice, so the scratch buffers' slice stride is kBlockSize.
        BitSerialCompute::apply(instr, d[0].data(), a[0].data(),
                                b[0].data(), kBlockSize);
        for (std::size_t k = 0; k < dst_slices; ++k)
            write_block(CcInstruction::sliceAddr(instr.dest, k) + off,
                        d[k]);

        if (op.inPlace) {
            if (energy_)
                energy_->chargeCacheOp(level, energy::CacheOp::Logic,
                                       steps);
            if (stats_)
                inPlaceOpsStat_->inc();
            if (faults_.enabled()) {
                // Section IV-I: in-place results bypass the ECC
                // datapath; the check unit recomputes each written
                // slice's code.
                outcome.extraLatency +=
                    dst_slices * params_.eccCheckLatency;
                if (energy_)
                    energy_->addCacheAccess(
                        level,
                        energy_->params().eccCheckPerBlock *
                            static_cast<double>(dst_slices));
            }
            if (params_.verifyCircuit)
                verifyBitSerialCircuit(instr, a, b, d);

            std::uint64_t key =
                (static_cast<std::uint64_t>(op.cacheIndex) << 32) |
                (static_cast<std::uint64_t>(op.partition) & 0xffffffffULL);
            Cycles interval = std::max<Cycles>(
                1, static_cast<Cycles>(params_.partitionPipelineFactor *
                                       static_cast<double>(step_latency)));
            Cycles &pfree = partition_free[key];
            start = std::max(start, pfree);
            // The first step pays the full activation latency; later
            // steps pipeline at the partition interval behind it.
            Cycles busy = step_latency +
                static_cast<Cycles>(steps - 1) * interval +
                outcome.extraLatency;
            if (!power_slots.empty()) {
                std::pop_heap(power_slots.begin(), power_slots.end(),
                              std::greater<>{});
                auto &slot = power_slots.back();
                start = std::max(start, slot.first);
                end = start + busy;
                slot.first = end;
                std::push_heap(power_slots.begin(), power_slots.end(),
                               std::greater<>{});
            } else {
                end = start + busy;
            }
            // The carry latch holds live state: the partition stays
            // busy for the whole sequence.
            pfree = end;
            ++res.inPlaceOps;
        } else {
            // Near-place: 2W slice reads cross the H-tree, the logic
            // unit runs W word-serial recurrence steps, results write
            // back.
            if (energy_ && !group_recovered) {
                for (std::size_t k = 0; k < 2 * width; ++k)
                    energy_->chargeCacheOp(level, energy::CacheOp::Read);
                energy_->chargeNearPlaceLogic(width);
                for (std::size_t k = 0; k < dst_slices; ++k)
                    energy_->chargeCacheOp(level,
                                           energy::CacheOp::Write);
            }
            if (stats_)
                nearPlaceOpsStat_->inc();
            if (op.cacheIndex >= near_free.size())
                near_free.resize(op.cacheIndex + 1, 0);
            start = std::max(start, near_free[op.cacheIndex]);
            end = start + params_.nearPlace.latency(level) +
                static_cast<Cycles>(2 * width) + outcome.extraLatency;
            near_free[op.cacheIndex] = end;
            ++res.nearPlaceOps;
        }
        finish = std::max(finish, end);

        res.faultRetries += outcome.retries;
        if (outcome.degradedNearPlace)
            ++res.faultDegradedOps;
        if (outcome.riscRecovered)
            ++res.faultRiscRecoveries;
        instrTable_.complete(*instr_id, 0, 0);
    }

    sched_.horizon = std::max(sched_.horizon, finish);
    res.computeLatency = finish;
    res.latency += finish;

    if (level == CacheLevel::L3 && groups > 0) {
        unsigned slice = ops.front().cacheIndex;
        Cycles notify = hier_.ring().send(slice, core % hier_.cores(),
                                          noc::MsgClass::Control);
        if (!sched_.streaming)
            res.latency += notify;
    }

    unpin_all();
    instrTable_.release(*instr_id);

    if (stats_) {
        blockOpsStat_->inc(res.blockOps);
        levelOpsStat_[static_cast<unsigned>(level)]->inc();
    }
    return res;
}

CcExecResult
CcController::executeOnce(CoreId core, const CcInstruction &instr)
{
    CcExecResult res;
    if (!sched_.streaming)
        sched_.reset(params_.maxActiveSubarrays);
    else
        sched_.issueClock += params_.issueLatency;  // dispatch serializes
    res.latency = params_.issueLatency;
    std::size_t blocks = divCeil(instr.size, kBlockSize);
    res.blockOps = blocks;
    perf::addCcBlockOps(blocks);

    // ------------------------------------------------------------------
    // Level selection (Section IV-E): highest level where all operands
    // hit; L3 when anything is uncached.
    // ------------------------------------------------------------------
    bool fixed_src2 = instr.op == CcOpcode::Search || instr.src2Replicated;
    // Replicated clmul packs its parities densely: far fewer dest blocks.
    std::size_t dest_blocks = blocks;
    std::size_t ops_per_dest_block = 1;
    if (instr.src2Replicated) {
        ops_per_dest_block = (8 * kBlockSize) / instr.clmulBitsPerBlock();
        dest_blocks = divCeil(blocks, ops_per_dest_block);
    }

    std::vector<Addr> &all_blocks = scratchBlocks_;
    all_blocks.clear();
    for (std::size_t i = 0; i < blocks; ++i) {
        Addr off = i * kBlockSize;
        if (instr.src1)
            all_blocks.push_back(instr.src1 + off);
        if (instr.src2 && !fixed_src2)
            all_blocks.push_back(instr.src2 + off);
        if (instr.dest && !instr.src2Replicated)
            all_blocks.push_back(instr.dest + off);
    }
    if (fixed_src2)
        all_blocks.push_back(instr.src2);
    if (instr.src2Replicated) {
        for (std::size_t i = 0; i < dest_blocks; ++i)
            all_blocks.push_back(instr.dest + i * kBlockSize);
    }

    CacheLevel level = params_.forceLevel
        ? *params_.forceLevel
        : hier_.chooseLevel(core, all_blocks);
    if (params_.useReusePredictor && !params_.forceLevel) {
        level = reuse_.recommend(level, all_blocks);
        if (level != CacheLevel::L3 && stats_)
            reuseHoistsStat_->inc();
    }
    if (params_.useReusePredictor) {
        for (Addr a : all_blocks)
            reuse_.touch(a);
    }
    res.level = level;

    std::uint64_t seq = ++instrSeq_;
    auto instr_id = instrTable_.allocate(instr, core, blocks);
    if (!instr_id) {
        // A full instruction table is a structural hazard, not a bug:
        // degrade to the scalar path rather than aborting.
        if (stats_)
            instrTableFullStat_->inc();
        return riscFallback(core, instr);
    }

    // ------------------------------------------------------------------
    // Operand staging: fetch + pin every block of every operand. Misses
    // overlap up to fetchMlp deep.
    // ------------------------------------------------------------------
    std::vector<Addr> &pinned = scratchPinned_;
    std::vector<Cycles> &fetch_lats = scratchFetchLats_;
    pinned.clear();
    fetch_lats.clear();
    bool fallback = false;

    auto stage = [&](Addr addr, bool exclusive, bool overwrite) {
        auto lat = stageOperand(core, addr, level, exclusive, overwrite);
        if (!lat) {
            fallback = true;
            return;
        }
        if (*lat > 0)
            fetch_lats.push_back(*lat);
        pinned.push_back(addr);
    };

    bool dest_overwritten = instr.op != CcOpcode::Clmul ||
        instr.src2Replicated;
    for (std::size_t i = 0; i < blocks && !fallback; ++i) {
        Addr off = i * kBlockSize;
        if (instr.src1)
            stage(instr.src1 + off, false, false);
        if (instr.src2 && !fixed_src2 && !fallback)
            stage(instr.src2 + off, false, false);
        if (instr.dest && !instr.src2Replicated && !fallback)
            stage(instr.dest + off, true, dest_overwritten);
    }
    if (fixed_src2 && !fallback)
        stage(instr.src2, false, false);
    if (instr.src2Replicated) {
        for (std::size_t i = 0; i < dest_blocks && !fallback; ++i)
            stage(instr.dest + i * kBlockSize, true, true);
    }

    auto unpin_all = [&]() {
        for (Addr a : pinned)
            hier_.cacheAt(level, core, a).unpin(a);
    };

    if (fallback) {
        unpin_all();
        instrTable_.release(*instr_id);
        return riscFallback(core, instr);
    }

    // Fetch latency: the longest miss dominates; the rest overlap with
    // MLP-deep pipelining. In stream mode staging overlaps with other
    // instructions' compute, so it folds into the stream total instead.
    if (!fetch_lats.empty()) {
        if (sched_.streaming) {
            sched_.fetchLats.insert(sched_.fetchLats.end(),
                                    fetch_lats.begin(), fetch_lats.end());
        } else {
            Cycles fetch = foldFetchLatencies(fetch_lats,
                                              params_.fetchMlp);
            res.fetchLatency = fetch;
            res.latency += fetch;
        }
    }

    // ------------------------------------------------------------------
    // Build block ops, resolve placement and operand locality.
    // ------------------------------------------------------------------
    std::vector<BlockOp> &ops = scratchOps_;
    ops.assign(blocks, BlockOp{});
    for (std::size_t i = 0; i < blocks; ++i) {
        BlockOp &op = ops[i];
        op.index = i;
        Addr off = i * kBlockSize;
        op.src1 = instr.src1 ? instr.src1 + off : 0;
        op.src2 = fixed_src2 ? instr.src2
                             : (instr.src2 ? instr.src2 + off : 0);
        op.dest = instr.dest ? instr.dest + off : 0;
        if (instr.src2Replicated)
            op.dest = instr.dest + (i / ops_per_dest_block) * kBlockSize;

        Addr anchor = op.src1 ? op.src1 : op.dest;
        Cache &anchor_cache = hier_.cacheAt(level, core, anchor);
        auto place = anchor_cache.placeOf(anchor);
        if (!place) {
            // Lost to an invalidation race between staging and issue
            // (Section IV-E's lock window): release and degrade.
            if (stats_)
                stagingRacesStat_->inc();
            unpin_all();
            keys_.releaseInstr(seq);
            instrTable_.release(*instr_id);
            return riscFallback(core, instr);
        }
        op.cacheIndex = level == CacheLevel::L3
            ? hier_.sliceFor(core, anchor)
            : core;
        op.partition = place->globalPartition;

        // Locality: every (non-key) operand must sit in the same cache
        // instance and block partition. The search key is replicated, so
        // it never constrains locality.
        op.inPlace = !params_.forceNearPlace;
        std::array<Addr, 3> members;
        std::size_t n_members = 0;
        if (op.src1)
            members[n_members++] = op.src1;
        if (op.src2 && !fixed_src2)
            members[n_members++] = op.src2;
        // A replicated clmul's dest is filled by the controller's result
        // shift register, so it does not constrain bit-line locality.
        if (op.dest && !instr.src2Replicated)
            members[n_members++] = op.dest;
        for (std::size_t mi = 0; mi < n_members; ++mi) {
            Addr m = members[mi];
            unsigned idx = level == CacheLevel::L3
                ? hier_.sliceFor(core, m)
                : core;
            Cache &c = hier_.cacheAt(level, core, m);
            auto p = c.placeOf(m);
            if (!p) {
                // Same race as the anchor, but survivable: the near-
                // place path re-reads through the hierarchy.
                if (stats_)
                    stagingRacesStat_->inc();
                op.inPlace = false;
                continue;
            }
            if (idx != op.cacheIndex ||
                p->globalPartition != op.partition) {
                op.inPlace = false;
            }
        }

        if (op.inPlace && (instr.op == CcOpcode::Search ||
                           instr.src2Replicated)) {
            // Replicate the key into this data block's partition once per
            // instruction (Section IV-D key table). The replication write
            // is what Table V's search row adds on top of cmp.
            PartitionId pid{level, op.cacheIndex, op.partition};
            if (keys_.needsReplication(seq, instr.src2, pid)) {
                op.keyWrite = true;
                ++res.keyReplications;
                if (stats_)
                    keyReplicationsStat_->inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Schedule: one command per cycle on the shared address bus;
    // same-partition ops serialize; the active-sub-array cap bounds
    // concurrency; near-place ops serialize on the controller's single
    // logic unit.
    // ------------------------------------------------------------------
    Cycles finish = sched_.horizon;
    auto &issue_clock = sched_.issueClock;
    auto &partition_free = sched_.partitionFree;
    auto &near_free = sched_.nearFree;
    auto &power_slots = sched_.powerSlots;

    std::uint64_t result_mask = 0;
    std::size_t result_bits = 0;

    // Key replication is an H-tree broadcast: the tree transfer is paid
    // once per instruction, each receiving partition pays only the
    // bit-array write component.
    bool key_htree_charged = false;

    for (BlockOp &op : ops) {
        auto op_entry = opTable_.allocate(*instr_id, op.index,
                                          {op.src1, op.src2, op.dest});
        // Synchronous mode drains the table every iteration, so
        // allocation only fails on undersized configurations; overflow
        // is survivable -- the op just executes untracked.
        if (op_entry) {
            for (std::size_t oi = 0; oi < 3; ++oi)
                opTable_.markFetched(*op_entry, oi);
        } else if (stats_) {
            opTableOverflowsStat_->inc();
        }

        issue_clock += 1;  // command delivery on the shared bus
        Cycles start = issue_clock / params_.commandIssuePerCycle;
        Cycles end;

        // Execute functionally first: the fault ladder's retries,
        // degradations and refills lengthen this op's occupancy below.
        if (op_entry)
            opTable_.markIssued(*op_entry);
        BlockOpOutcome outcome = performBlockOp(core, instr, op, level);
        if (op_entry) {
            opTable_.markDone(*op_entry);
            opTable_.release(*op_entry);
        }
        res.faultRetries += outcome.retries;
        if (outcome.degradedNearPlace)
            ++res.faultDegradedOps;
        if (outcome.riscRecovered)
            ++res.faultRiscRecoveries;

        if (op.inPlace) {
            std::uint64_t key =
                (static_cast<std::uint64_t>(op.cacheIndex) << 32) |
                (static_cast<std::uint64_t>(op.partition) & 0xffffffffULL);
            Cycles interval = std::max<Cycles>(
                1, static_cast<Cycles>(params_.partitionPipelineFactor *
                                       static_cast<double>(
                                           params_.inPlaceLatency(level))));
            // One probe serves both the read here and the store below;
            // no other PartitionClock access intervenes, so the
            // reference stays valid.
            Cycles &pfree = partition_free[key];
            start = std::max(start, pfree);
            if (op.keyWrite) {
                // The key replication write occupies the partition before
                // the search op can activate. Energy: one H-tree
                // broadcast per instruction plus an array write per
                // receiving partition.
                start += params_.inPlaceLatency(level);
                if (energy_) {
                    EnergyPJ write = energy_->params().cacheOpEnergy(
                        level, energy::CacheOp::Write);
                    double ic = energy_->params().htreeFraction(
                        level, energy::CacheOp::Write);
                    if (!key_htree_charged) {
                        energy_->addCacheIc(level, write * ic);
                        key_htree_charged = true;
                    }
                    energy_->addCacheAccess(level, write * (1.0 - ic));
                }
            }
            Cycles busy = params_.inPlaceLatency(level) +
                outcome.extraLatency;
            if (!power_slots.empty()) {
                // Lexicographic (free-at, index) min-heap: the popped
                // slot is the first minimum a linear scan would find,
                // so schedules are bit-identical to the scan version.
                std::pop_heap(power_slots.begin(), power_slots.end(),
                              std::greater<>{});
                auto &slot = power_slots.back();
                start = std::max(start, slot.first);
                end = start + busy;
                slot.first = end;
                std::push_heap(power_slots.begin(), power_slots.end(),
                               std::greater<>{});
            } else {
                end = start + busy;
            }
            pfree = start + interval + outcome.extraLatency;
            ++res.inPlaceOps;
        } else {
            if (op.cacheIndex >= near_free.size())
                near_free.resize(op.cacheIndex + 1, 0);
            start = std::max(start, near_free[op.cacheIndex]);
            end = start + params_.nearPlace.latency(level) +
                outcome.extraLatency;
            near_free[op.cacheIndex] = end;
            ++res.nearPlaceOps;
        }
        finish = std::max(finish, end);

        std::uint64_t mask = outcome.mask;
        if (isCcR(instr.op)) {
            std::size_t bits =
                std::min<std::size_t>(kWordsPerBlock,
                                      instr.size / 8 - result_bits);
            result_mask |= (mask & ((bits == 64
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << bits) - 1)))
                << result_bits;
            result_bits += bits;
        }
        instrTable_.complete(*instr_id, 0, 0);
    }

    sched_.horizon = std::max(sched_.horizon, finish);
    res.computeLatency = finish;
    res.latency += finish;
    res.result = result_mask;

    // Completion notification: the computing cache notifies the L1 CC
    // controller, which notifies the core (Figure 6 steps 6-7).
    if (level == CacheLevel::L3 && blocks > 0) {
        unsigned slice = ops.front().cacheIndex;
        Cycles notify = hier_.ring().send(slice, core % hier_.cores(),
                                          noc::MsgClass::Control);
        if (!sched_.streaming)
            res.latency += notify;
    }

    unpin_all();
    keys_.releaseInstr(seq);
    instrTable_.release(*instr_id);

    if (stats_) {
        blockOpsStat_->inc(blocks);
        levelOpsStat_[static_cast<unsigned>(level)]->inc();
    }
    return res;
}

} // namespace ccache::cc
