#include "cc/cc_controller.hh"

#include <algorithm>

#include "common/bit_util.hh"
#include "common/logging.hh"

namespace ccache::cc {

using cache::Cache;

void
CcController::ScheduleState::reset(unsigned power_cap)
{
    streaming = false;
    issueClock = 0;
    horizon = 0;
    partitionFree.clear();
    nearFree.clear();
    powerSlots.clear();
    if (power_cap > 0)
        powerSlots.assign(power_cap, 0);
    fetchLats.clear();
}

namespace {

/** Overlap a set of staging latencies MLP-deep: the longest miss
 *  dominates and the rest pipeline behind it. */
Cycles
foldFetchLatencies(std::vector<Cycles> &lats, unsigned mlp)
{
    if (lats.empty())
        return 0;
    std::sort(lats.begin(), lats.end(), std::greater<Cycles>());
    Cycles total = lats.front();
    Cycles rest = 0;
    for (std::size_t i = 1; i < lats.size(); ++i)
        rest += lats[i];
    return total + rest / std::max(1u, mlp);
}

} // namespace

CcController::CcController(cache::Hierarchy &hier,
                           energy::EnergyModel *energy, StatRegistry *stats,
                           const CcControllerParams &params)
    : hier_(hier), energy_(energy), stats_(stats), params_(params),
      instrTable_(params.instrTableEntries),
      opTable_(params.opTableEntries),
      nearPlace_(params.nearPlace, energy, stats)
{
    if (params_.verifyCircuit) {
        sram::SubArrayParams sp;
        sp.rows = 8;
        sp.cols = 8 * kBlockSize;
        circuit_ = std::make_unique<sram::SubArray>(sp);
    }
}

CcExecResult
CcController::execute(CoreId core, const CcInstruction &instr)
{
    instr.validate();

    if (stats_)
        stats_->counter("cc.instructions").inc();
    if (energy_)
        energy_->chargeVectorInstructions(1);

    if (!instr.spansPage())
        return executeOnce(core, instr);

    // Section IV-D: page-spanning operands raise a pipeline exception and
    // the handler splits the instruction per page.
    if (stats_)
        stats_->counter("cc.page_split_exceptions").inc();
    CcExecResult total;
    total.latency = params_.pageSplitPenalty;
    std::size_t result_bits = 0;
    for (const CcInstruction &piece : instr.splitAtPageBoundaries()) {
        CcExecResult r = executeOnce(core, piece);
        total.latency += r.latency;
        total.fetchLatency += r.fetchLatency;
        total.computeLatency += r.computeLatency;
        total.blockOps += r.blockOps;
        total.inPlaceOps += r.inPlaceOps;
        total.nearPlaceOps += r.nearPlaceOps;
        total.keyReplications += r.keyReplications;
        total.lockRetries += r.lockRetries;
        total.riscFallback |= r.riscFallback;
        total.level = r.level;
        ++total.pageSplits;
        if (isCcR(instr.op)) {
            std::size_t bits = piece.size / 8;
            total.result |= r.result << result_bits;
            result_bits += bits;
        }
    }
    return total;
}

std::vector<CcExecResult>
CcController::executeStream(CoreId core,
                            const std::vector<CcInstruction> &instrs,
                            Cycles *total_latency)
{
    sched_.reset(params_.maxActiveSubarrays);
    sched_.streaming = true;
    std::vector<CcExecResult> results;
    results.reserve(instrs.size());
    for (const CcInstruction &instr : instrs)
        results.push_back(execute(core, instr));
    sched_.streaming = false;

    if (total_latency) {
        Cycles fetch = foldFetchLatencies(sched_.fetchLats,
                                          params_.fetchMlp);
        // One completion notification covers the drained stream.
        *total_latency = sched_.horizon + fetch +
            hier_.ring().send(0, core % hier_.cores(),
                              noc::MsgClass::Control);
    }
    return results;
}

std::optional<Cycles>
CcController::stageOperand(CoreId core, Addr addr, CacheLevel level,
                           bool exclusive, bool for_overwrite)
{
    Cycles latency = 0;
    for (unsigned attempt = 0; attempt <= params_.maxLockRetries;
         ++attempt) {
        latency += hier_.fetchToLevel(core, addr, level, exclusive,
                                      for_overwrite);
        Cache &cache = hier_.cacheAt(level, core, addr);
        if (cache.contains(addr)) {
            // Pin + promote to MRU so the operand survives until issue
            // (Section IV-E).
            cache.pin(addr);
            cache.promoteMRU(addr);
            return latency;
        }
        if (stats_)
            stats_->counter("cc.lock_retries").inc();
    }
    return std::nullopt;
}

std::uint64_t
CcController::performBlockOp(CoreId core, const CcInstruction &instr,
                             const BlockOp &op, CacheLevel level)
{
    Cache &src_cache = hier_.cacheAt(level, core, op.src1 ? op.src1
                                                          : op.dest);
    auto read_block = [&](Addr a) -> Block {
        Cache &c = hier_.cacheAt(level, core, a);
        const Block *p = c.peek(a);
        CC_ASSERT(p, "staged operand 0x", std::hex, a, " vanished");
        return *p;
    };

    Block a{};
    Block b{};
    if (op.src1)
        a = read_block(op.src1);
    if (op.src2)
        b = read_block(op.src2);

    std::uint64_t mask = 0;
    energy::CacheOp cost_op = energy::cacheOpFor(sram::BitlineOp::Read);
    switch (instr.op) {
      case CcOpcode::Copy: cost_op = energy::CacheOp::Copy; break;
      case CcOpcode::Buz: cost_op = energy::CacheOp::Buz; break;
      case CcOpcode::Cmp: cost_op = energy::CacheOp::Cmp; break;
      case CcOpcode::Search: cost_op = energy::CacheOp::Cmp; break;
      case CcOpcode::And:
      case CcOpcode::Or:
      case CcOpcode::Xor: cost_op = energy::CacheOp::Logic; break;
      case CcOpcode::Not: cost_op = energy::CacheOp::Not; break;
      case CcOpcode::Clmul: cost_op = energy::CacheOp::Clmul; break;
    }

    if (instr.src2Replicated) {
        // Replicated clmul: the XOR tree's parities stream into the
        // controller's result register and land packed in dest.
        if (energy_)
            energy_->chargeCacheOp(level, cost_op);
        if (stats_)
            stats_->counter(op.inPlace ? "cc.in_place_ops"
                                       : "cc.near_place_ops").inc();

        std::size_t bits_per_op = instr.clmulBitsPerBlock();
        std::size_t ops_per_dest = (8 * kBlockSize) / bits_per_op;
        std::size_t bit_off = (op.index % ops_per_dest) * bits_per_op;

        Block parities = BlockCompute::clmulPack(a, b,
                                                 instr.clmulWordBits);
        std::uint64_t bits = blockWord(parities, 0);

        Cache &dst_cache = hier_.cacheAt(level, core, op.dest);
        const Block *cur = dst_cache.peek(op.dest);
        CC_ASSERT(cur, "packed clmul destination vanished");
        Block merged = *cur;
        std::size_t word = bit_off / 64;
        std::size_t shift = bit_off % 64;
        std::uint64_t w = blockWord(merged, word);
        std::uint64_t mask = bits_per_op == 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << bits_per_op) - 1) << shift;
        w = (w & ~mask) | ((bits << shift) & mask);
        setBlockWord(merged, word, w);
        dst_cache.poke(op.dest, merged);
        dst_cache.markDirty(op.dest);

        // One result-register drain (a block write) per filled dest.
        if (energy_ && bit_off + bits_per_op == 8 * kBlockSize)
            energy_->chargeCacheOp(level, energy::CacheOp::Write);
        return 0;
    }

    if (op.inPlace) {
        if (energy_)
            energy_->chargeCacheOp(level, cost_op);
        if (stats_)
            stats_->counter("cc.in_place_ops").inc();

        if (isCcR(instr.op)) {
            mask = BlockCompute::wordEqualMask(a, b);
        } else {
            Block result = BlockCompute::apply(instr.op, a, b,
                                               instr.clmulWordBits);
            Cache &dst_cache = hier_.cacheAt(level, core, op.dest);
            bool ok = dst_cache.poke(op.dest, result);
            CC_ASSERT(ok, "in-place destination 0x", std::hex, op.dest,
                      " vanished");
            dst_cache.markDirty(op.dest);
            if (params_.verifyCircuit)
                verifyAgainstCircuit(instr, a, b, result);
        }
    } else {
        // Near-place: the unit charges reads/logic/writeback itself.
        NearPlaceResult res = nearPlace_.execute(
            instr.op, level, a, b, instr.clmulWordBits);
        if (isCcR(instr.op)) {
            mask = res.wordEqualMask;
        } else {
            Cache &dst_cache = hier_.cacheAt(level, core, op.dest);
            bool ok = dst_cache.poke(op.dest, res.result);
            CC_ASSERT(ok, "near-place destination 0x", std::hex, op.dest,
                      " vanished");
            dst_cache.markDirty(op.dest);
        }
    }

    (void)src_cache;
    return mask;
}

void
CcController::verifyAgainstCircuit(const CcInstruction &instr,
                                   const Block &a, const Block &b,
                                   const Block &result)
{
    sram::BlockLoc la{0, 0}, lb{0, 1}, ld{0, 2};
    circuit_->write(la, a);
    circuit_->write(lb, b);
    Block circuit_result{};
    switch (instr.op) {
      case CcOpcode::Copy:
        circuit_->opCopy(la, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Buz:
        circuit_->opBuz(ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Not:
        circuit_->opNot(la, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::And:
        circuit_->opAnd(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Or:
        circuit_->opOr(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Xor:
        circuit_->opXor(la, lb, ld);
        circuit_result = circuit_->read(ld);
        break;
      case CcOpcode::Clmul: {
        auto clres = circuit_->opClmul(la, lb, instr.clmulWordBits);
        std::uint64_t packed = 0;
        for (std::size_t i = 0; i < clres.parities.size(); ++i)
            packed |= static_cast<std::uint64_t>(clres.parities[i]) << i;
        setBlockWord(circuit_result, 0, packed);
        break;
      }
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        return;  // mask ops verified separately at the sub-array tests
    }
    CC_ASSERT(circuit_result == result,
              "circuit/functional divergence for ", toString(instr.op));
    if (stats_)
        stats_->counter("cc.circuit_verifications").inc();
}

CcExecResult
CcController::riscFallback(CoreId core, const CcInstruction &instr)
{
    // Section IV-E: after repeated lock failures the core translates the
    // CC operation into RISC operations.
    CcExecResult res;
    res.riscFallback = true;
    res.level = CacheLevel::L1;
    if (stats_)
        stats_->counter("cc.risc_fallbacks").inc();

    std::size_t blocks = divCeil(instr.size, kBlockSize);
    for (std::size_t i = 0; i < blocks; ++i) {
        Addr off = i * kBlockSize;
        Block a{};
        Block b{};
        if (instr.src1)
            res.latency += hier_.read(core, instr.src1 + off, &a).latency;
        if (instr.src2 && instr.op != CcOpcode::Search)
            res.latency += hier_.read(core, instr.src2 + off, &b).latency;
        if (instr.op == CcOpcode::Search)
            res.latency += hier_.read(core, instr.src2, &b).latency;

        if (isCcR(instr.op)) {
            std::uint64_t mask = BlockCompute::wordEqualMask(a, b);
            res.result |= mask << (i * kWordsPerBlock);
        } else {
            Block out = BlockCompute::apply(instr.op, a, b,
                                            instr.clmulWordBits);
            res.latency +=
                hier_.write(core, instr.dest + off, &out).latency;
        }
        // Word-granular loads/stores/ALU ops on the scalar core.
        if (energy_)
            energy_->chargeInstructions(3 * kWordsPerBlock);
        res.latency += kWordsPerBlock;  // ALU ops overlap the misses
    }
    res.blockOps = blocks;
    return res;
}

CcExecResult
CcController::executeOnce(CoreId core, const CcInstruction &instr)
{
    CcExecResult res;
    if (!sched_.streaming)
        sched_.reset(params_.maxActiveSubarrays);
    else
        sched_.issueClock += params_.issueLatency;  // dispatch serializes
    res.latency = params_.issueLatency;
    std::size_t blocks = divCeil(instr.size, kBlockSize);
    res.blockOps = blocks;

    // ------------------------------------------------------------------
    // Level selection (Section IV-E): highest level where all operands
    // hit; L3 when anything is uncached.
    // ------------------------------------------------------------------
    bool fixed_src2 = instr.op == CcOpcode::Search || instr.src2Replicated;
    // Replicated clmul packs its parities densely: far fewer dest blocks.
    std::size_t dest_blocks = blocks;
    std::size_t ops_per_dest_block = 1;
    if (instr.src2Replicated) {
        ops_per_dest_block = (8 * kBlockSize) / instr.clmulBitsPerBlock();
        dest_blocks = divCeil(blocks, ops_per_dest_block);
    }

    std::vector<Addr> all_blocks;
    for (std::size_t i = 0; i < blocks; ++i) {
        Addr off = i * kBlockSize;
        if (instr.src1)
            all_blocks.push_back(instr.src1 + off);
        if (instr.src2 && !fixed_src2)
            all_blocks.push_back(instr.src2 + off);
        if (instr.dest && !instr.src2Replicated)
            all_blocks.push_back(instr.dest + off);
    }
    if (fixed_src2)
        all_blocks.push_back(instr.src2);
    if (instr.src2Replicated) {
        for (std::size_t i = 0; i < dest_blocks; ++i)
            all_blocks.push_back(instr.dest + i * kBlockSize);
    }

    CacheLevel level = params_.forceLevel
        ? *params_.forceLevel
        : hier_.chooseLevel(core, all_blocks);
    if (params_.useReusePredictor && !params_.forceLevel) {
        level = reuse_.recommend(level, all_blocks);
        if (level != CacheLevel::L3 && stats_)
            stats_->counter("cc.reuse_hoists").inc();
    }
    if (params_.useReusePredictor) {
        for (Addr a : all_blocks)
            reuse_.touch(a);
    }
    res.level = level;

    std::uint64_t seq = ++instrSeq_;
    auto instr_id = instrTable_.allocate(instr, core, blocks);
    CC_ASSERT(instr_id, "instruction table full in synchronous mode");

    // ------------------------------------------------------------------
    // Operand staging: fetch + pin every block of every operand. Misses
    // overlap up to fetchMlp deep.
    // ------------------------------------------------------------------
    std::vector<Addr> pinned;
    std::vector<Cycles> fetch_lats;
    bool fallback = false;

    auto stage = [&](Addr addr, bool exclusive, bool overwrite) {
        auto lat = stageOperand(core, addr, level, exclusive, overwrite);
        if (!lat) {
            fallback = true;
            return;
        }
        if (*lat > 0)
            fetch_lats.push_back(*lat);
        pinned.push_back(addr);
    };

    bool dest_overwritten = instr.op != CcOpcode::Clmul ||
        instr.src2Replicated;
    for (std::size_t i = 0; i < blocks && !fallback; ++i) {
        Addr off = i * kBlockSize;
        if (instr.src1)
            stage(instr.src1 + off, false, false);
        if (instr.src2 && !fixed_src2 && !fallback)
            stage(instr.src2 + off, false, false);
        if (instr.dest && !instr.src2Replicated && !fallback)
            stage(instr.dest + off, true, dest_overwritten);
    }
    if (fixed_src2 && !fallback)
        stage(instr.src2, false, false);
    if (instr.src2Replicated) {
        for (std::size_t i = 0; i < dest_blocks && !fallback; ++i)
            stage(instr.dest + i * kBlockSize, true, true);
    }

    auto unpin_all = [&]() {
        for (Addr a : pinned)
            hier_.cacheAt(level, core, a).unpin(a);
    };

    if (fallback) {
        unpin_all();
        instrTable_.release(*instr_id);
        return riscFallback(core, instr);
    }

    // Fetch latency: the longest miss dominates; the rest overlap with
    // MLP-deep pipelining. In stream mode staging overlaps with other
    // instructions' compute, so it folds into the stream total instead.
    if (!fetch_lats.empty()) {
        if (sched_.streaming) {
            sched_.fetchLats.insert(sched_.fetchLats.end(),
                                    fetch_lats.begin(), fetch_lats.end());
        } else {
            Cycles fetch = foldFetchLatencies(fetch_lats,
                                              params_.fetchMlp);
            res.fetchLatency = fetch;
            res.latency += fetch;
        }
    }

    // ------------------------------------------------------------------
    // Build block ops, resolve placement and operand locality.
    // ------------------------------------------------------------------
    std::vector<BlockOp> ops(blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
        BlockOp &op = ops[i];
        op.index = i;
        Addr off = i * kBlockSize;
        op.src1 = instr.src1 ? instr.src1 + off : 0;
        op.src2 = fixed_src2 ? instr.src2
                             : (instr.src2 ? instr.src2 + off : 0);
        op.dest = instr.dest ? instr.dest + off : 0;
        if (instr.src2Replicated)
            op.dest = instr.dest + (i / ops_per_dest_block) * kBlockSize;

        Addr anchor = op.src1 ? op.src1 : op.dest;
        Cache &anchor_cache = hier_.cacheAt(level, core, anchor);
        auto place = anchor_cache.placeOf(anchor);
        CC_ASSERT(place, "anchor operand not resident after staging");
        op.cacheIndex = level == CacheLevel::L3
            ? hier_.sliceFor(core, anchor)
            : core;
        op.partition = place->globalPartition;

        // Locality: every (non-key) operand must sit in the same cache
        // instance and block partition. The search key is replicated, so
        // it never constrains locality.
        op.inPlace = !params_.forceNearPlace;
        std::vector<Addr> members;
        if (op.src1)
            members.push_back(op.src1);
        if (op.src2 && !fixed_src2)
            members.push_back(op.src2);
        // A replicated clmul's dest is filled by the controller's result
        // shift register, so it does not constrain bit-line locality.
        if (op.dest && !instr.src2Replicated)
            members.push_back(op.dest);
        for (Addr m : members) {
            unsigned idx = level == CacheLevel::L3
                ? hier_.sliceFor(core, m)
                : core;
            Cache &c = hier_.cacheAt(level, core, m);
            auto p = c.placeOf(m);
            CC_ASSERT(p, "operand 0x", std::hex, m,
                      " not resident after staging");
            if (idx != op.cacheIndex ||
                p->globalPartition != op.partition) {
                op.inPlace = false;
            }
        }

        if (op.inPlace && (instr.op == CcOpcode::Search ||
                           instr.src2Replicated)) {
            // Replicate the key into this data block's partition once per
            // instruction (Section IV-D key table). The replication write
            // is what Table V's search row adds on top of cmp.
            PartitionId pid{level, op.cacheIndex, op.partition};
            if (keys_.needsReplication(seq, instr.src2, pid)) {
                op.keyWrite = true;
                ++res.keyReplications;
                if (stats_)
                    stats_->counter("cc.key_replications").inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Schedule: one command per cycle on the shared address bus;
    // same-partition ops serialize; the active-sub-array cap bounds
    // concurrency; near-place ops serialize on the controller's single
    // logic unit.
    // ------------------------------------------------------------------
    Cycles finish = sched_.horizon;
    auto &issue_clock = sched_.issueClock;
    auto &partition_free = sched_.partitionFree;
    auto &near_free = sched_.nearFree;
    auto &power_slots = sched_.powerSlots;

    std::uint64_t result_mask = 0;
    std::size_t result_bits = 0;

    // Key replication is an H-tree broadcast: the tree transfer is paid
    // once per instruction, each receiving partition pays only the
    // bit-array write component.
    bool key_htree_charged = false;

    for (BlockOp &op : ops) {
        auto op_entry = opTable_.allocate(*instr_id, op.index,
                                          {op.src1, op.src2, op.dest});
        // Synchronous mode drains the table every iteration, so
        // allocation cannot fail; the capacity still models the
        // structure.
        CC_ASSERT(op_entry, "operation table full");
        for (std::size_t oi = 0; oi < 3; ++oi)
            opTable_.markFetched(*op_entry, oi);

        issue_clock += 1;  // command delivery on the shared bus
        Cycles start = issue_clock / params_.commandIssuePerCycle;
        Cycles end;

        if (op.inPlace) {
            auto key = std::make_pair(op.cacheIndex, op.partition);
            Cycles interval = std::max<Cycles>(
                1, static_cast<Cycles>(params_.partitionPipelineFactor *
                                       static_cast<double>(
                                           params_.inPlaceLatency(level))));
            start = std::max(start, partition_free[key]);
            if (op.keyWrite) {
                // The key replication write occupies the partition before
                // the search op can activate. Energy: one H-tree
                // broadcast per instruction plus an array write per
                // receiving partition.
                start += params_.inPlaceLatency(level);
                if (energy_) {
                    EnergyPJ write = energy_->params().cacheOpEnergy(
                        level, energy::CacheOp::Write);
                    double ic = energy_->params().htreeFraction(
                        level, energy::CacheOp::Write);
                    if (!key_htree_charged) {
                        energy_->addCacheIc(level, write * ic);
                        key_htree_charged = true;
                    }
                    energy_->addCacheAccess(level, write * (1.0 - ic));
                }
            }
            if (!power_slots.empty()) {
                auto slot = std::min_element(power_slots.begin(),
                                             power_slots.end());
                start = std::max(start, *slot);
                end = start + params_.inPlaceLatency(level);
                *slot = end;
            } else {
                end = start + params_.inPlaceLatency(level);
            }
            partition_free[key] = start + interval;
            ++res.inPlaceOps;
        } else {
            start = std::max(start, near_free[op.cacheIndex]);
            end = start + params_.nearPlace.latency(level);
            near_free[op.cacheIndex] = end;
            ++res.nearPlaceOps;
        }
        finish = std::max(finish, end);

        opTable_.markIssued(*op_entry);
        std::uint64_t mask = performBlockOp(core, instr, op, level);
        opTable_.markDone(*op_entry);
        opTable_.release(*op_entry);

        if (isCcR(instr.op)) {
            std::size_t bits =
                std::min<std::size_t>(kWordsPerBlock,
                                      instr.size / 8 - result_bits);
            result_mask |= (mask & ((bits == 64
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << bits) - 1)))
                << result_bits;
            result_bits += bits;
        }
        instrTable_.complete(*instr_id, 0, 0);
    }

    sched_.horizon = std::max(sched_.horizon, finish);
    res.computeLatency = finish;
    res.latency += finish;
    res.result = result_mask;

    // Completion notification: the computing cache notifies the L1 CC
    // controller, which notifies the core (Figure 6 steps 6-7).
    if (level == CacheLevel::L3 && blocks > 0) {
        unsigned slice = ops.front().cacheIndex;
        Cycles notify = hier_.ring().send(slice, core % hier_.cores(),
                                          noc::MsgClass::Control);
        if (!sched_.streaming)
            res.latency += notify;
    }

    unpin_all();
    keys_.releaseInstr(seq);
    instrTable_.release(*instr_id);

    if (stats_) {
        stats_->counter("cc.block_ops").inc(blocks);
        stats_->counter(std::string("cc.level_") +
                        ccache::toString(level)).inc();
    }
    return res;
}

} // namespace ccache::cc
