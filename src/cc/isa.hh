/**
 * @file
 * Compute Cache ISA (paper Table II).
 *
 * Vector instructions whose operands are specified register-indirect and
 * whose sizes are immediates up to 16 KB. cc_cmp / cc_search are CC-R
 * (read-only, result to a core register); the rest are CC-RW.
 */

#ifndef CCACHE_CC_ISA_HH
#define CCACHE_CC_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ccache::cc {

/** Table II opcodes, extended with the Neural Cache bit-serial
 *  arithmetic class (arXiv 1805.03718). cc_clmulX is one opcode with a
 *  width field; the bit-serial ops carry a lane-width field and operate
 *  on the transposed bit-slice layout (see cc/transpose.hh). */
enum class CcOpcode {
    Copy,    ///< b[i] = a[i]
    Buz,     ///< a[i] = 0
    Cmp,     ///< r[i] = (a[i] == b[i]), word-granular
    Search,  ///< r[i] = (a[i] == k), 64-byte key per Section IV-A
    And,     ///< c[i] = a[i] & b[i]
    Or,      ///< c[i] = a[i] | b[i]
    Xor,     ///< c[i] = a[i] ^ b[i]
    Clmul,   ///< c_i = xor-reduce(a[i] & b[i]) at 64/128/256-bit words
    Not,     ///< b[i] = ~a[i]
    Add,     ///< c[l] = a[l] + b[l] (mod 2^W), bit-serial transposed
    Sub,     ///< c[l] = a[l] - b[l] (mod 2^W), bit-serial transposed
    Mul,     ///< c[l] = a[l] * b[l] (mod 2^W), shift-and-add
    Lt,      ///< c bit l = (a[l] < b[l]), signed or unsigned
    Gt,      ///< c bit l = (a[l] > b[l]), signed or unsigned
    Eq,      ///< c bit l = (a[l] == b[l])
};

const char *toString(CcOpcode op);

/** Every enumerator, for exhaustive metadata tests and sweeps. */
inline constexpr CcOpcode kAllCcOpcodes[] = {
    CcOpcode::Copy, CcOpcode::Buz,   CcOpcode::Cmp, CcOpcode::Search,
    CcOpcode::And,  CcOpcode::Or,    CcOpcode::Xor, CcOpcode::Clmul,
    CcOpcode::Not,  CcOpcode::Add,   CcOpcode::Sub, CcOpcode::Mul,
    CcOpcode::Lt,   CcOpcode::Gt,    CcOpcode::Eq,
};
inline constexpr std::size_t kNumCcOpcodes =
    sizeof(kAllCcOpcodes) / sizeof(kAllCcOpcodes[0]);

/** CC-R instructions only read memory; CC-RW also write (Section IV-H). */
bool isCcR(CcOpcode op);

/** Number of memory operands (source + destination addresses). */
unsigned numAddrOperands(CcOpcode op);

/** True for the bit-serial arithmetic class (transposed operands). */
bool isBitSerial(CcOpcode op);

/** True for the bit-serial predicate ops (lt/gt/eq). */
bool isBitSerialCompare(CcOpcode op);

/** Maximum vector size in bytes (Section IV-A). @{ */
inline constexpr std::size_t kMaxVectorBytes = 16 * 1024;
inline constexpr std::size_t kMaxCmpBytes = 512;       ///< 64 words
inline constexpr std::size_t kSearchKeyBytes = 64;
/** @} */

/** Bit-serial lane widths supported by the carry latch (1..32 bits). */
inline constexpr std::size_t kMaxBitSerialWidth = 32;

/**
 * Address stride between consecutive bit-slice rows of a transposed
 * operand. One page equals (or is a multiple of) the partition stride
 * 2^minMatchBits of every cache level (Table III), so page-aligned
 * operand bases put all W slices of a lane group into the SAME block
 * partition at consecutive rows -- the Neural Cache layout that makes
 * in-place bit-serial arithmetic possible. It also means a slice row
 * never crosses a page, so bit-serial ops never take the Section IV-D
 * page-split exception.
 */
inline constexpr std::size_t kSliceStride = kPageSize;

/** One decoded CC instruction. */
struct CcInstruction
{
    CcOpcode op = CcOpcode::Copy;
    Addr src1 = 0;          ///< a
    Addr src2 = 0;          ///< b (cmp/and/or/xor/clmul) or key (search)
    Addr dest = 0;          ///< b/c for RW ops; unused for CC-R
    /** Vector size in bytes. For bit-serial ops this is the bytes per
     *  bit-slice row (lanes / 8, whole 64-byte blocks); slice k of an
     *  operand then lives at base + k * kSliceStride (see below). */
    std::size_t size = 0;
    std::size_t clmulWordBits = 64;  ///< 64 / 128 / 256

    /** Lane width W of the bit-serial ops (1..kMaxBitSerialWidth). */
    std::size_t laneBits = 8;

    /** Signed compare semantics for Lt/Gt (two's complement). Ignored
     *  by every other opcode: add/sub/mul wrap mod 2^W, where signed
     *  and unsigned arithmetic coincide. */
    bool isSigned = false;

    /** Extension used by BMM: src2 is ONE 64-byte block replicated into
     *  every partition holding src1 data — the same controller machinery
     *  as the cc_search key (Section IV-D key table). The clmul parities
     *  are then packed densely into dest by the controller's result
     *  shift register (one dest block per 512 parity bits). */
    bool src2Replicated = false;

    /** Builders for each Table II mnemonic. @{ */
    static CcInstruction copy(Addr a, Addr b, std::size_t n);
    static CcInstruction buz(Addr a, std::size_t n);
    static CcInstruction cmp(Addr a, Addr b, std::size_t n);
    static CcInstruction search(Addr a, Addr k, std::size_t n);
    static CcInstruction logicalAnd(Addr a, Addr b, Addr c, std::size_t n);
    static CcInstruction logicalOr(Addr a, Addr b, Addr c, std::size_t n);
    static CcInstruction logicalXor(Addr a, Addr b, Addr c, std::size_t n);
    static CcInstruction logicalNot(Addr a, Addr b, std::size_t n);
    static CcInstruction clmul(Addr a, Addr b, Addr c, std::size_t n,
                               std::size_t word_bits);
    /** @} */

    /** The replicated-operand clmul extension (see src2Replicated). */
    static CcInstruction clmulReplicated(Addr a, Addr b_block, Addr c,
                                         std::size_t n,
                                         std::size_t word_bits);

    /** Bit-serial arithmetic builders. @p slice_bytes is the bytes per
     *  bit-slice row (lanes / 8); @p width the lane width W. @{ */
    static CcInstruction add(Addr a, Addr b, Addr c,
                             std::size_t slice_bytes, std::size_t width);
    static CcInstruction sub(Addr a, Addr b, Addr c,
                             std::size_t slice_bytes, std::size_t width);
    static CcInstruction mul(Addr a, Addr b, Addr c,
                             std::size_t slice_bytes, std::size_t width);
    static CcInstruction cmpLt(Addr a, Addr b, Addr c,
                               std::size_t slice_bytes, std::size_t width,
                               bool is_signed);
    static CcInstruction cmpGt(Addr a, Addr b, Addr c,
                               std::size_t slice_bytes, std::size_t width,
                               bool is_signed);
    static CcInstruction cmpEq(Addr a, Addr b, Addr c,
                               std::size_t slice_bytes, std::size_t width);
    /** @} */

    /** Address of bit-slice row @p k of the operand rooted at @p base. */
    static Addr sliceAddr(Addr base, std::size_t k)
    {
        return base + k * kSliceStride;
    }

    /** Bit-slice rows of the operand rooted at @p base: laneBits for
     *  sources (and add/sub/mul destinations), one predicate slice for
     *  compare destinations. */
    std::size_t sliceCount(Addr base) const;

    /** Parity bits produced per 64-byte block op of a clmul. */
    std::size_t clmulBitsPerBlock() const
    {
        return 8 * 64 / clmulWordBits;
    }

    /** All memory operand base addresses in use. */
    std::vector<Addr> operandAddrs() const;

    /** Addresses the instruction writes. */
    std::vector<Addr> writtenAddrs() const;

    /**
     * Validate against the ISA limits; throws FatalError with a
     * diagnostic on malformed encodings (zero/oversized vectors, bad
     * clmul width, unaligned operands).
     */
    void validate() const;

    /** True iff any operand's address range crosses a 4 KB page
     *  boundary — the condition that raises the pipeline exception of
     *  Section IV-D. */
    bool spansPage() const;

    /**
     * The exception handler's behaviour: split into sub-instructions
     * whose operands each stay within one page.
     */
    std::vector<CcInstruction> splitAtPageBoundaries() const;

    /** Human-readable disassembly, e.g. "cc_and 0x1000 0x2000 0x3000 256". */
    std::string toString() const;
};

} // namespace ccache::cc

#endif // CCACHE_CC_ISA_HH
