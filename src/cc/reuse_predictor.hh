/**
 * @file
 * Cache-block reuse predictor for CC level selection — the Section IV-E
 * future-work extension ("Cache allocation policy can be improved in
 * future by enhancing our CC controller with a cache block reuse
 * predictor [11]").
 *
 * The baseline policy computes at the highest level where all operands
 * already hit, falling to L3 on any miss. With the predictor enabled,
 * operand *pages* that have shown reuse across recent CC instructions
 * are hoisted: an L3-policy operation whose pages are predicted hot is
 * instead staged at L2 (or L1), so subsequent operations on the same
 * data hit closer to the core.
 */

#ifndef CCACHE_CC_REUSE_PREDICTOR_HH
#define CCACHE_CC_REUSE_PREDICTOR_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ccache::cc {

/** Per-page saturating reuse counters with LRU-bounded capacity. */
class ReusePredictor
{
  public:
    /** @param entries   tracked pages (LRU replacement).
     *  @param threshold accesses after which a page predicts reuse. */
    explicit ReusePredictor(std::size_t entries = 256,
                            unsigned threshold = 2);

    /** Record that a CC instruction touched @p addr's page. */
    void touch(Addr addr);

    /** True if the page of @p addr is predicted to be reused soon. */
    bool predictsReuse(Addr addr) const;

    /**
     * Level recommendation for an instruction over @p operands whose
     * baseline policy chose @p policy_level: hoist L3 to L2 when every
     * operand page predicts reuse (higher levels are never demoted).
     */
    CacheLevel recommend(CacheLevel policy_level,
                         const std::vector<Addr> &operands) const;

    /** Pages currently tracked (bounded by the entry capacity). */
    std::size_t trackedPages() const { return table_.size(); }

  private:
    struct Entry
    {
        unsigned count = 0;
        std::list<Addr>::iterator lruIt;
    };

    std::size_t capacity_;
    unsigned threshold_;
    std::unordered_map<Addr, Entry> table_;
    std::list<Addr> lru_;  ///< front = most recent
};

} // namespace ccache::cc

#endif // CCACHE_CC_REUSE_PREDICTOR_HH
