/**
 * @file
 * Key table (Section IV-D): for cc_search, the controller replicates the
 * key block into every block partition holding source data. The key table
 * remembers which partitions already hold the key for a given instruction
 * so replication is not repeated.
 */

#ifndef CCACHE_CC_KEY_TABLE_HH
#define CCACHE_CC_KEY_TABLE_HH

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/types.hh"

namespace ccache::cc {

/** Identity of one block partition within the whole hierarchy. */
struct PartitionId
{
    CacheLevel level;
    unsigned cacheIndex;     ///< core for L1/L2, slice for L3
    std::size_t partition;   ///< global partition within that cache

    auto operator<=>(const PartitionId &) const = default;
};

/** Tracks key replication per (instruction, key address). */
class KeyTable
{
  public:
    /**
     * Returns true if the key at @p key_addr must still be replicated
     * into @p where for instruction @p instr, and records the
     * replication. Returns false if the partition already has it.
     */
    bool needsReplication(std::uint64_t instr, Addr key_addr,
                          const PartitionId &where);

    /** Drop all state for a retired instruction. */
    void releaseInstr(std::uint64_t instr);

    /** Total distinct replications recorded (stats). */
    std::size_t replications() const { return replications_; }

    /** Instructions with live replication state (leak check in tests). */
    std::size_t trackedInstructions() const { return table_.size(); }

  private:
    struct Key
    {
        std::uint64_t instr;
        Addr keyAddr;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &k) const
        {
            return std::hash<std::uint64_t>{}(k.instr * 0x9e3779b97f4a7c15ULL
                                              ^ k.keyAddr);
        }
    };

    std::unordered_map<Key, std::set<PartitionId>, KeyHash> table_;
    std::size_t replications_ = 0;
};

} // namespace ccache::cc

#endif // CCACHE_CC_KEY_TABLE_HH
