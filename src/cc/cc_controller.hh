/**
 * @file
 * Compute Cache controller (Sections IV-D, IV-E).
 *
 * The controller turns a CC instruction into per-cache-block simple
 * vector operations, chooses the cache level (highest level holding all
 * operands, else L3), stages and pins operands, checks operand locality,
 * executes in-place (bit-line) or near-place (controller logic unit),
 * schedules the operations across block partitions under the shared
 * address-bus and peak-power constraints, and returns the completion
 * latency plus the cmp/search result mask.
 *
 * Functional results are computed with BlockCompute, whose equivalence to
 * the circuit-level sram::SubArray model is established by the test
 * suite; the controller can optionally re-verify every in-place op
 * against a live sub-array (verifyCircuit mode).
 */

#ifndef CCACHE_CC_CC_CONTROLLER_HH
#define CCACHE_CC_CC_CONTROLLER_HH

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cache/hierarchy.hh"
#include "cc/ecc.hh"
#include "common/event_trace.hh"
#include "cc/instruction_table.hh"
#include "cc/isa.hh"
#include "cc/key_table.hh"
#include "cc/near_place_unit.hh"
#include "cc/operation_table.hh"
#include "cc/reuse_predictor.hh"
#include "fault/fault_injector.hh"
#include "sram/subarray.hh"

namespace ccache::cc {

/** Controller configuration. */
struct CcControllerParams
{
    /** Latency of one in-place block operation (Section IV-J: 14 cycles
     *  vs 22 near-place, for the large L3 sub-arrays; the smaller L1/L2
     *  arrays activate and sense faster). @{ */
    Cycles inPlaceOpLatency = 14;   ///< L3
    Cycles inPlaceOpLatencyL2 = 8;
    Cycles inPlaceOpLatencyL1 = 4;
    /** @} */

    /** Back-to-back in-place ops in one partition overlap precharge with
     *  the previous op's write-back: the initiation interval is this
     *  fraction of the op latency. */
    double partitionPipelineFactor = 0.5;

    /** In-place op latency at @p level. */
    Cycles
    inPlaceLatency(CacheLevel level) const
    {
        switch (level) {
          case CacheLevel::L1: return inPlaceOpLatencyL1;
          case CacheLevel::L2: return inPlaceOpLatencyL2;
          case CacheLevel::L3: return inPlaceOpLatency;
        }
        return inPlaceOpLatency;
    }

    NearPlaceParams nearPlace;

    /** Peak-power cap: sub-arrays allowed to compute simultaneously
     *  (Section IV-D limits concurrency to bound peak power). 0 = no cap. */
    unsigned maxActiveSubarrays = 128;

    /** Commands deliverable per cycle on the shared address H-tree. */
    unsigned commandIssuePerCycle = 1;

    /** Operand-lock retry budget before RISC fallback (Section IV-E). */
    unsigned maxLockRetries = 2;

    /** Pipeline-exception penalty for page-spanning operands. */
    Cycles pageSplitPenalty = 30;

    /** Core -> L1 CC controller dispatch cost per instruction. */
    Cycles issueLatency = 4;

    /** Memory-level parallelism of the operand fetch engine. */
    unsigned fetchMlp = 8;

    /** Force every op to a fixed level (benchmark configurations
     *  CC_L1 / CC_L2 / CC_L3). */
    std::optional<CacheLevel> forceLevel;

    /** Force the near-place path (the Figure 8a configuration). */
    bool forceNearPlace = false;

    /** Re-execute every in-place op on a circuit-level sub-array and
     *  compare (slow; integration tests enable it). */
    bool verifyCircuit = false;

    /** Enhance level selection with the page-reuse predictor
     *  (Section IV-E future-work extension): L3-policy instructions
     *  whose operand pages show recent reuse are hoisted to L2. */
    bool useReusePredictor = false;

    std::size_t instrTableEntries = 8;
    std::size_t opTableEntries = 64;

    /**
     * Fault injection and the graceful-degradation ladder. With
     * faults.enabled every sensed operand passes through the injector
     * and the ECC check unit; detected failures climb the recovery
     * ladder: in-place retry -> near-place unit (single-row, full
     * margin) -> discard-and-refill plus RISC recompute. Disabled (the
     * default), none of the fault code runs and all outputs are
     * bit-identical to a fault-free build. @{
     */
    fault::FaultParams faults;

    /** ECC logic-unit check latency per 64-byte block (Section IV-I
     *  alternative 1: the xor-identity check unit). */
    Cycles eccCheckLatency = 3;

    /** Re-sense attempts before degrading to the near-place unit. */
    unsigned maxFaultRetries = 2;

    /** Background scrubber stops per instruction (0 disables).
     *  Scrubbing steals idle cycles (Section IV-I alternative 2), so
     *  its cycles are tracked as a stat, not instruction latency. */
    unsigned scrubBlocksPerInstr = 4;

    /** Cycles to scrub one block (read + ECC check). */
    Cycles scrubCheckLatency = 4;

    /** Latency of discarding an uncorrectable line and refilling clean
     *  data from memory (the final rung's recovery cost). */
    Cycles faultRefillLatency = 240;
    /** @} */
};

/** Outcome of executing one CC instruction. */
struct CcExecResult
{
    Cycles latency = 0;             ///< fetch + compute + notification

    /** Portion of the latency spent staging operands (cold misses). */
    Cycles fetchLatency = 0;

    /** Portion spent computing in / near the cache sub-arrays. */
    Cycles computeLatency = 0;
    std::uint64_t result = 0;       ///< cmp/search mask (word-granular)
    CacheLevel level = CacheLevel::L3;
    std::size_t blockOps = 0;
    std::size_t inPlaceOps = 0;
    std::size_t nearPlaceOps = 0;
    std::size_t keyReplications = 0;
    std::size_t pageSplits = 0;
    std::size_t lockRetries = 0;
    bool riscFallback = false;

    /** Fault-ladder activity (all zero with injection disabled). @{ */
    std::size_t faultRetries = 0;        ///< re-sense attempts
    std::size_t faultDegradedOps = 0;    ///< degraded to near-place
    std::size_t faultRiscRecoveries = 0; ///< discard+refill+RISC blocks
    /** @} */
};

/** The controller. One instance serves the whole hierarchy (it models
 *  the cooperating per-cache CC controllers of Figure 1). */
class CcController
{
  public:
    CcController(cache::Hierarchy &hier, energy::EnergyModel *energy,
                 StatRegistry *stats,
                 const CcControllerParams &params = CcControllerParams{});

    const CcControllerParams &params() const { return params_; }
    CcControllerParams &mutableParams() { return params_; }

    /** Attach (or detach with nullptr) a timeline event sink. Completed
     *  instructions and fault-ladder rungs are recorded when the sink is
     *  enabled; a disabled or absent sink costs one branch per hook. */
    void setTraceSink(EventTrace *trace) { trace_ = trace; }

    /**
     * Runtime verification hooks (DESIGN.md §9). The controller pokes
     * cache arrays directly (bypassing Hierarchy's transaction hooks),
     * so it re-audits every operand block after each instruction; the
     * watchdog bounds the operand-lock and fault-retry ladders. Both
     * detach with nullptr and cost one branch when absent. @{
     */
    void setChecker(verify::CoherenceChecker *checker)
    {
        checker_ = checker;
    }
    void setWatchdog(verify::ProgressWatchdog *watchdog)
    {
        watchdog_ = watchdog;
    }
    /** @} */

    /** Execute one CC instruction issued by @p core to its L1 CC
     *  controller; blocks until completion (atomic-transaction model). */
    CcExecResult execute(CoreId core, const CcInstruction &instr);

    /**
     * Execute a stream of INDEPENDENT CC instructions with instruction-
     * level overlap: the instruction table keeps several in flight, so
     * successive instructions share the command bus, power slots and
     * partition schedule instead of serializing end-to-end (how DB-BitMap
     * issues its many independent cc_or operations, Section VI-E, and
     * how consecutive 512-byte cc_cmp/cc_search chunks pipeline).
     *
     * The caller must guarantee independence (no RAW/WAW overlap between
     * the instructions); each returned entry carries its own result mask.
     * @p total_latency receives the overlapped makespan of the stream.
     */
    std::vector<CcExecResult> executeStream(
        CoreId core, const std::vector<CcInstruction> &instrs,
        Cycles *total_latency);

    /** Tables exposed for inspection in tests. @{ */
    const KeyTable &keyTable() const { return keys_; }
    const ReusePredictor &reusePredictor() const { return reuse_; }
    const fault::FaultInjector &faultInjector() const { return faults_; }
    /** @} */

    /** Mutable injector access for runtime fault-rate scheduling (the
     *  chaos harness raises and clears per-shard fault storms through
     *  FaultInjector::setParams; see DESIGN.md §12). */
    fault::FaultInjector &mutableFaultInjector() { return faults_; }

  private:
    /** One simple vector operation, decomposed and placed. */
    struct BlockOp
    {
        Addr src1 = 0;
        Addr src2 = 0;   ///< 0 when unused; key address for search
        Addr dest = 0;   ///< 0 for CC-R
        std::size_t index = 0;

        bool inPlace = false;
        bool keyWrite = false;          ///< search key replication first
        unsigned cacheIndex = 0;        ///< slice (L3) or core (L1/L2)
        std::size_t partition = 0;      ///< global partition in that cache
        Cycles fetchLatency = 0;
    };

    /** The pre-instrumentation body of execute(): dispatch, page-split
     *  handling and the fault-model inter-instruction ticks. */
    CcExecResult executeInstr(CoreId core, const CcInstruction &instr);

    CcExecResult executeOnce(CoreId core, const CcInstruction &instr);

    /**
     * Bit-serial arithmetic path: operands are laneBits bit-slice rows
     * at kSliceStride apart, carved into lane groups of one 64-byte
     * block per slice. Each group runs as one carry-latch sequence in
     * its partition (in-place) or as a word-serial pass through the
     * near-place logic unit.
     */
    CcExecResult executeBitSerial(CoreId core, const CcInstruction &instr);

    /** RISC translation of a bit-serial instruction (staging failure /
     *  structural hazards): slice blocks move through the hierarchy and
     *  the scalar core runs the same BitSerialCompute recurrences. */
    CcExecResult riscBitSerial(CoreId core, const CcInstruction &instr);

    /** Optionally verify one bit-serial lane group against the
     *  sub-array carry-latch circuit model. Slice blocks of a/b hold
     *  the group's sensed source slices; @p dst the functional result
     *  (sliceCount(dest) blocks). */
    void verifyBitSerialCircuit(const CcInstruction &instr,
                                const std::vector<Block> &a,
                                const std::vector<Block> &b,
                                const std::vector<Block> &dst);

    /** Stage + pin one operand; returns latency or nullopt if the line
     *  could not be pinned (all ways pinned by other ops). */
    std::optional<Cycles> stageOperand(CoreId core, Addr addr,
                                       CacheLevel level, bool exclusive,
                                       bool for_overwrite);

    /** Outcome of one block op, including fault-ladder effects. */
    struct BlockOpOutcome
    {
        std::uint64_t mask = 0;        ///< cmp/search word-equality bits
        Cycles extraLatency = 0;       ///< retries, ECC checks, refills
        unsigned retries = 0;
        bool degradedNearPlace = false;
        bool riscRecovered = false;
    };

    /** Execute one block op functionally + charge its energy. */
    BlockOpOutcome performBlockOp(CoreId core, const CcInstruction &instr,
                                  const BlockOp &op, CacheLevel level);

    /**
     * Fault-ladder rung 0/1: sense both operands through the injector
     * and the ECC check unit, retrying margin failures and detected-
     * uncorrectable errors up to maxFaultRetries times. On success the
     * (possibly corrected, possibly silently corrupted) sensed data is
     * left in @p a / @p b. Returns false when every attempt failed and
     * the caller must degrade to the next rung.
     */
    bool senseOperands(const BlockOp &op, CacheLevel level, bool dual_row,
                       Cycles retry_latency, energy::CacheOp retry_op,
                       Block *a, Block *b, BlockOpOutcome *out);

    /** One operand through the fault model + ECC check unit. Returns
     *  false on a detected-uncorrectable error. */
    bool checkOperand(Block *sensed, const Block &truth, Addr addr,
                      std::uint64_t subarray_id, CacheLevel level,
                      BlockOpOutcome *out);

    /** Background scrubber: visit a few resident blocks, correct or
     *  discard latent errors (idle-cycle model, Section IV-I alt 2). */
    void scrubTick();

    /** Record a fault-ladder rung on the trace timeline (no-op when
     *  tracing is off). Fault hooks run below the per-core context, so
     *  these land on the global "system" track. */
    void traceFault(const char *name, Addr addr, CacheLevel level);

    /** Optionally verify an in-place op against the circuit model. */
    void verifyAgainstCircuit(const CcInstruction &instr, const Block &a,
                              const Block &b, const Block &result);

    /** Fallback: run the instruction as RISC loads/stores. */
    CcExecResult riscFallback(CoreId core, const CcInstruction &instr);

    cache::Hierarchy &hier_;
    energy::EnergyModel *energy_;
    StatRegistry *stats_;
    EventTrace *trace_ = nullptr;
    verify::CoherenceChecker *checker_ = nullptr;
    verify::ProgressWatchdog *watchdog_ = nullptr;
    CcControllerParams params_;

    /**
     * Flat open-addressed map from a packed (cache index, partition)
     * key to that partition's next-free cycle. The schedule loop hits
     * this once per in-place block op, which made the former
     * `std::map<std::pair<...>, Cycles>` the single hottest scheduler
     * structure (DESIGN.md §13); linear probing over a power-of-two
     * table keeps the lookup allocation-free, and clear() is O(1) via
     * an epoch stamp instead of touching every slot. Fully
     * deterministic: probe order depends only on the keys inserted.
     */
    struct PartitionClock
    {
        struct Slot
        {
            std::uint64_t key = 0;
            Cycles value = 0;
            std::uint32_t epoch = 0;   ///< live iff equal to map epoch
        };

        /** Find-or-insert; a fresh entry reads as 0 (partition free at
         *  cycle 0). The reference stays valid until the next call. */
        Cycles &operator[](std::uint64_t key);

        /** Forget every entry (O(1): bumps the epoch). */
        void clear();

        std::vector<Slot> slots;
        std::uint32_t epoch = 1;
        std::size_t live = 0;

      private:
        void grow();
    };

    /** Shared scheduling state for one instruction or one stream. */
    struct ScheduleState
    {
        bool streaming = false;
        Cycles issueClock = 0;
        Cycles horizon = 0;
        PartitionClock partitionFree;
        /** Next-free cycle of each controller's near-place logic unit,
         *  indexed by cache index (flat: at most one per core/slice). */
        std::vector<Cycles> nearFree;
        /** Active-sub-array power slots as a binary min-heap of
         *  (free-at cycle, slot index), ordered lexicographically so the
         *  pop matches what a first-minimum linear scan would pick —
         *  smallest free time, then smallest slot index. Replaces an
         *  O(cap) std::min_element per in-place op with O(log cap). */
        std::vector<std::pair<Cycles, std::uint32_t>> powerSlots;
        std::vector<Cycles> fetchLats;

        void reset(unsigned power_cap);
    };

    InstructionTable instrTable_;
    OperationTable opTable_;
    KeyTable keys_;
    NearPlaceUnit nearPlace_;
    ReusePredictor reuse_;
    fault::FaultInjector faults_;
    ScheduleState sched_;
    std::uint64_t instrSeq_ = 0;

    /** Stats pre-registered in the constructor under "cc." so the
     *  per-block-op paths increment through stable pointers instead of
     *  resolving dotted names in every iteration (same pattern as Cache
     *  and Hierarchy; StatRegistry storage is pointer-stable). All null
     *  without a registry. @{ */
    StatHistogram *instrLatencyHist_ = nullptr;
    StatAccum *faultScrubCyclesAccum_ = nullptr;
    StatCounter *instructionsStat_ = nullptr;
    StatCounter *pageSplitExceptionsStat_ = nullptr;
    StatCounter *lockRetriesStat_ = nullptr;
    StatCounter *operandRefetchesStat_ = nullptr;
    StatCounter *inPlaceOpsStat_ = nullptr;
    StatCounter *nearPlaceOpsStat_ = nullptr;
    StatCounter *blockOpsStat_ = nullptr;
    StatCounter *circuitVerificationsStat_ = nullptr;
    StatCounter *riscFallbacksStat_ = nullptr;
    StatCounter *reuseHoistsStat_ = nullptr;
    StatCounter *instrTableFullStat_ = nullptr;
    StatCounter *stagingRacesStat_ = nullptr;
    StatCounter *keyReplicationsStat_ = nullptr;
    StatCounter *opTableOverflowsStat_ = nullptr;
    StatCounter *faultRiscRecoveriesStat_ = nullptr;
    StatCounter *faultDegradedNearPlaceStat_ = nullptr;
    StatCounter *faultRetriesStat_ = nullptr;
    StatCounter *faultMarginFailuresStat_ = nullptr;
    StatCounter *faultEccUncorrectableStat_ = nullptr;
    StatCounter *faultEccCorrectedStat_ = nullptr;
    StatCounter *faultSilentCorruptionsStat_ = nullptr;
    StatCounter *faultScrubVisitsStat_ = nullptr;
    StatCounter *faultScrubRefillsStat_ = nullptr;
    StatCounter *faultScrubCorrectionsStat_ = nullptr;
    /** Per-level op counters ("cc.level_L1" .. "cc.level_L3"), indexed
     *  by the CacheLevel enum value (slot 0 unused). */
    std::array<StatCounter *, 4> levelOpsStat_{};
    /** @} */

    /** Per-instruction scratch buffers, pool-allocated once and reused
     *  across executeOnce() calls so the block-op hot path performs no
     *  heap allocation in steady state (DESIGN.md §13 arena rules:
     *  contents are dead outside one executeOnce activation). @{ */
    std::vector<Addr> scratchBlocks_;
    std::vector<Addr> scratchPinned_;
    std::vector<Cycles> scratchFetchLats_;
    std::vector<BlockOp> scratchOps_;
    /** Sensed source / result slice blocks of one bit-serial lane
     *  group. */
    std::vector<Block> scratchSliceA_;
    std::vector<Block> scratchSliceB_;
    std::vector<Block> scratchSliceD_;
    /** @} */

    /** Scratch sub-array for verifyCircuit mode. */
    std::unique_ptr<sram::SubArray> circuit_;
};

} // namespace ccache::cc

#endif // CCACHE_CC_CC_CONTROLLER_HH
