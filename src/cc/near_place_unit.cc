#include "cc/near_place_unit.hh"

#include <bit>

#include "common/logging.hh"

namespace ccache::cc {

Block
BlockCompute::apply(CcOpcode op, const Block &a, const Block &b,
                    std::size_t clmul_word_bits)
{
    Block out{};
    switch (op) {
      case CcOpcode::Copy:
        return a;
      case CcOpcode::Buz:
        return out;
      case CcOpcode::Not:
        for (std::size_t w = 0; w < kWordsPerBlock; ++w)
            setBlockWord(out, w, ~blockWord(a, w));
        return out;
      case CcOpcode::And:
        for (std::size_t w = 0; w < kWordsPerBlock; ++w)
            setBlockWord(out, w, blockWord(a, w) & blockWord(b, w));
        return out;
      case CcOpcode::Or:
        for (std::size_t w = 0; w < kWordsPerBlock; ++w)
            setBlockWord(out, w, blockWord(a, w) | blockWord(b, w));
        return out;
      case CcOpcode::Xor:
        for (std::size_t w = 0; w < kWordsPerBlock; ++w)
            setBlockWord(out, w, blockWord(a, w) ^ blockWord(b, w));
        return out;
      case CcOpcode::Clmul:
        return clmulPack(a, b, clmul_word_bits);
      case CcOpcode::Cmp:
      case CcOpcode::Search:
        CC_PANIC("cmp/search produce a mask, not a block");
      case CcOpcode::Add:
      case CcOpcode::Sub:
      case CcOpcode::Mul:
      case CcOpcode::Lt:
      case CcOpcode::Gt:
      case CcOpcode::Eq:
        CC_PANIC("bit-serial ops act on slice stacks, not single blocks "
                 "(see BitSerialCompute)");
    }
    return out;
}

std::uint64_t
BlockCompute::wordEqualMask(const Block &a, const Block &b)
{
    std::uint64_t mask = 0;
    for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
        if (blockWord(a, w) == blockWord(b, w))
            mask |= std::uint64_t{1} << w;
    }
    return mask;
}

Block
BlockCompute::clmulPack(const Block &a, const Block &b,
                        std::size_t word_bits)
{
    CC_ASSERT(word_bits == 64 || word_bits == 128 || word_bits == 256,
              "bad clmul width ", word_bits);
    Block out{};
    std::size_t words64_per = word_bits / 64;
    std::size_t result_bits = (8 * kBlockSize) / word_bits;
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < result_bits; ++i) {
        unsigned ones = 0;
        for (std::size_t j = 0; j < words64_per; ++j) {
            std::size_t w = i * words64_per + j;
            ones += std::popcount(blockWord(a, w) & blockWord(b, w));
        }
        packed |= static_cast<std::uint64_t>(ones & 1) << i;
    }
    setBlockWord(out, 0, packed);
    return out;
}

NearPlaceUnit::NearPlaceUnit(const NearPlaceParams &params,
                             energy::EnergyModel *energy,
                             StatRegistry *stats)
    : params_(params), energy_(energy), stats_(stats)
{
    if (stats_)
        opsStat_ = &stats_->counter("cc.near_place_ops");
}

NearPlaceResult
NearPlaceUnit::execute(CcOpcode op, CacheLevel level, const Block &a,
                       const Block &b, std::size_t clmul_word_bits)
{
    ++ops_;
    if (opsStat_)
        opsStat_->inc();

    NearPlaceResult res;
    res.latency = params_.latency(level);

    unsigned reads = numAddrOperands(op) - (isCcR(op) ? 0u : 1u);
    if (op == CcOpcode::Buz)
        reads = 0;

    if (energy_) {
        // Operands cross the H-tree into the controller registers: full
        // baseline read cost per source operand.
        for (unsigned r = 0; r < reads; ++r)
            energy_->chargeCacheOp(level, energy::CacheOp::Read);
        energy_->chargeNearPlaceLogic(1);
        // RW results are written back over the H-tree.
        if (!isCcR(op))
            energy_->chargeCacheOp(level, energy::CacheOp::Write);
    }

    if (isCcR(op)) {
        res.wordEqualMask = BlockCompute::wordEqualMask(a, b);
    } else {
        res.result = BlockCompute::apply(op, a, b, clmul_word_bits);
    }
    return res;
}

} // namespace ccache::cc
