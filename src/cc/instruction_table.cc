#include "cc/instruction_table.hh"

#include "common/logging.hh"

namespace ccache::cc {

InstructionTable::InstructionTable(std::size_t entries)
    : entries_(entries)
{
    CC_ASSERT(entries > 0, "instruction table needs entries");
}

std::size_t
InstructionTable::occupancy() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

std::optional<InstrId>
InstructionTable::allocate(const CcInstruction &instr, CoreId core,
                           std::size_t total_ops)
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].valid)
            continue;
        InstrEntry &e = entries_[i];
        e = InstrEntry{};
        e.instr = instr;
        e.core = core;
        e.valid = true;
        e.totalOps = total_ops;
        return i;
    }
    return std::nullopt;
}

InstrEntry &
InstructionTable::entry(InstrId id)
{
    CC_ASSERT(id < entries_.size() && entries_[id].valid,
              "bad instruction-table id ", id);
    return entries_[id];
}

const InstrEntry &
InstructionTable::entry(InstrId id) const
{
    CC_ASSERT(id < entries_.size() && entries_[id].valid,
              "bad instruction-table id ", id);
    return entries_[id];
}

std::optional<std::size_t>
InstructionTable::nextOp(InstrId id)
{
    InstrEntry &e = entry(id);
    if (e.nextOp >= e.totalOps)
        return std::nullopt;
    return e.nextOp++;
}

bool
InstructionTable::complete(InstrId id, std::uint64_t result_bits,
                           std::size_t nbits)
{
    InstrEntry &e = entry(id);
    CC_ASSERT(e.completedOps < e.totalOps, "over-completion of instr ", id);
    if (nbits > 0) {
        CC_ASSERT(e.resultBits + nbits <= 64, "result register overflow");
        e.result |= result_bits << e.resultBits;
        e.resultBits += nbits;
    }
    ++e.completedOps;
    return e.done();
}

void
InstructionTable::release(InstrId id)
{
    entry(id).valid = false;
}

} // namespace ccache::cc
